package phantom

import (
	"math"
	"testing"

	"distfdk/internal/geometry"
)

func testSystem() *geometry.System {
	return &geometry.System{
		DSO: 250, DSD: 350,
		NU: 64, NV: 48, DU: 0.5, DV: 0.5,
		NP: 36,
		NX: 32, NY: 32, NZ: 24, DX: 0.5, DY: 0.5, DZ: 0.5,
	}
}

func TestEllipsoidContains(t *testing.T) {
	e := Ellipsoid{CX: 0.5, A: 0.2, B: 0.1, C: 0.3, Rho: 1}
	if !e.Contains(0.5, 0, 0) {
		t.Error("centre must be inside")
	}
	if !e.Contains(0.69, 0, 0) || e.Contains(0.71, 0, 0) {
		t.Error("X semi-axis boundary wrong")
	}
	if !e.Contains(0.5, 0.09, 0) || e.Contains(0.5, 0.11, 0) {
		t.Error("Y semi-axis boundary wrong")
	}
	if !e.Contains(0.5, 0, 0.29) || e.Contains(0.5, 0, 0.31) {
		t.Error("Z semi-axis boundary wrong")
	}
}

func TestEllipsoidRotation(t *testing.T) {
	// A long thin ellipsoid rotated 90° about Z swaps its X/Y extents.
	e := Ellipsoid{A: 0.5, B: 0.05, C: 0.1, Phi: math.Pi / 2, Rho: 1}
	if e.Contains(0.4, 0, 0) {
		t.Error("rotated ellipsoid should not extend along X")
	}
	if !e.Contains(0, 0.4, 0) {
		t.Error("rotated ellipsoid should extend along Y")
	}
}

func TestSheppLoganDensities(t *testing.T) {
	p := SheppLogan()
	if len(p.Ellipsoids) != 10 {
		t.Fatalf("Shepp–Logan has %d ellipsoids, want 10", len(p.Ellipsoids))
	}
	// Centre of the head: skull (1.0) + brain (−0.8) = 0.2.
	if d := p.Density(0, 0, 0); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("centre density = %g, want 0.2", d)
	}
	// Outside the skull: 0.
	if d := p.Density(0.95, 0, 0); d != 0 {
		t.Errorf("outside density = %g, want 0", d)
	}
	// Inside the skull shell only: 1.0.
	if d := p.Density(0, 0.9, 0); math.Abs(d-1.0) > 1e-12 {
		t.Errorf("skull shell density = %g, want 1.0", d)
	}
	// Inside a ventricle (left ellipsoid at x=−0.22): 0.2 − 0.2 = 0.
	if d := p.Density(-0.22, 0, 0); math.Abs(d-0.0) > 1e-12 {
		t.Errorf("ventricle density = %g, want 0", d)
	}
}

func TestNamedPhantomsAreBounded(t *testing.T) {
	for _, p := range []*Phantom{SheppLogan(), CoffeeBean(), Bumblebee(), Foam(20, 1), UniformSphere(0.5, 1)} {
		if p.Name == "" {
			t.Error("phantom must be named")
		}
		for i := range p.Ellipsoids {
			e := &p.Ellipsoids[i]
			for _, c := range []float64{e.CX + e.A, e.CX - e.A, e.CY + e.B, e.CY - e.B, e.CZ + e.C, e.CZ - e.C} {
				if c < -1.01 || c > 1.01 {
					t.Errorf("%s ellipsoid %d leaves the normalised FOV (extent %g)", p.Name, i, c)
				}
			}
		}
	}
}

func TestFoamDeterministic(t *testing.T) {
	a, b := Foam(10, 42), Foam(10, 42)
	if len(a.Ellipsoids) != 11 {
		t.Fatalf("foam(10) has %d ellipsoids, want 11", len(a.Ellipsoids))
	}
	for i := range a.Ellipsoids {
		if a.Ellipsoids[i] != b.Ellipsoids[i] {
			t.Fatal("Foam is not deterministic for equal seeds")
		}
	}
	c := Foam(10, 43)
	same := true
	for i := range a.Ellipsoids {
		if a.Ellipsoids[i] != c.Ellipsoids[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical foam")
	}
}

func TestVoxelize(t *testing.T) {
	sys := testSystem()
	p := UniformSphere(0.5, 2)
	scale := 6.0 // FOV half-extent 6 mm; sphere radius 3 mm
	vol, err := p.Voxelize(sys, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	ci, cj, ck := sys.NX/2, sys.NY/2, sys.NZ/2
	if got := vol.At(ci, cj, ck); got != 2 {
		t.Fatalf("centre voxel = %g, want 2", got)
	}
	if got := vol.At(0, 0, 0); got != 0 {
		t.Fatalf("corner voxel = %g, want 0", got)
	}
	if _, err := p.Voxelize(sys, -1, 1); err == nil {
		t.Error("expected scale error")
	}
}

// Supersampling must soften boundary voxels: their value lies strictly
// between inside and outside densities, and interior values are unchanged.
func TestVoxelizeSupersampling(t *testing.T) {
	sys := testSystem()
	p := UniformSphere(0.5, 1)
	scale := 6.0
	coarse, _ := p.Voxelize(sys, scale, 1)
	fine, _ := p.Voxelize(sys, scale, 2)
	ci, cj, ck := sys.NX/2, sys.NY/2, sys.NZ/2
	if fine.At(ci, cj, ck) != 1 {
		t.Fatalf("interior voxel changed: %g", fine.At(ci, cj, ck))
	}
	// Find a boundary voxel: scan +X from centre until coarse flips 1→0.
	var frac float32 = -1
	for i := ci; i < sys.NX-1; i++ {
		if coarse.At(i, cj, ck) == 1 && coarse.At(i+1, cj, ck) == 0 {
			frac = fine.At(i+1, cj, ck)
			break
		}
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("no sensible boundary voxel found (frac=%g)", frac)
	}
}
