package perfmodel

import (
	"math"
	"testing"

	"distfdk/internal/core"
	"distfdk/internal/geometry"
)

// paperSystem returns the tomo_00029 geometry at a 4096³ output — the
// configuration of Figure 13d.
func paperSystem() *geometry.System {
	return &geometry.System{
		DSO: 100, DSD: 250,
		NU: 2004, NV: 1335, DU: 0.025, DV: 0.025,
		NP: 1800,
		NX: 4096, NY: 4096, NZ: 4096,
		DX: 0.0025, DY: 0.0025, DZ: 0.0025,
	}
}

func modelFor(t testing.TB, ngpus, nr int) *Model {
	t.Helper()
	sys := paperSystem()
	plan, err := core.NewPlan(sys, ngpus/nr, nr, core.DefaultBatchCount)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(plan, ABCI())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	if err := ABCI().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ABCI()
	bad.THBP = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error")
	}
	if _, err := New(nil, ABCI()); err == nil {
		t.Error("expected nil-plan error")
	}
}

func TestBatchTimesPositiveAndDifferential(t *testing.T) {
	m := modelFor(t, 8, 4)
	b0 := m.Batch(0, 0)
	b1 := m.Batch(0, 1)
	for _, s := range []StageTimes{b0, b1} {
		if s.Load <= 0 || s.Filter <= 0 || s.BP <= 0 || s.D2H <= 0 || s.Store <= 0 {
			t.Fatalf("non-positive stage time: %+v", s)
		}
	}
	// Later batches load only the differential rows, so they are
	// cheaper than the first (Equation 13's two cases).
	if b1.Load >= b0.Load {
		t.Fatalf("differential load %g not below first load %g", b1.Load, b0.Load)
	}
	if b0.CPU() != b0.Load+b0.Filter || b0.GPU() != b0.H2D+b0.BP+b0.D2H {
		t.Fatal("aggregate accessors inconsistent")
	}
	// Empty batches cost nothing.
	sys := paperSystem()
	sys.NZ = 9
	plan, err := core.NewPlan(sys, 1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := New(plan, ABCI())
	if b := m2.Batch(0, 7); b != (StageTimes{}) {
		t.Fatalf("trailing empty batch has cost %+v", b)
	}
}

func TestReduceTimeTree(t *testing.T) {
	if got := reduceTime(1e9, 1, 1e9); got != 0 {
		t.Fatalf("single-rank reduce cost %g", got)
	}
	// 8 ranks: 3 rounds.
	if got := reduceTime(1e9, 8, 1e9); math.Abs(got-3) > 1e-12 {
		t.Fatalf("8-rank reduce %g, want 3", got)
	}
	// 5 ranks: ceil(log2(5)) = 3 rounds.
	if got := reduceTime(1e9, 5, 1e9); math.Abs(got-3) > 1e-12 {
		t.Fatalf("5-rank reduce %g, want 3", got)
	}
}

// The headline scaling insight of Section 5: runtime ∝ 1/Ngpus in the
// compute-bound regime, flattening once shared I/O dominates.
func TestStrongScalingShape(t *testing.T) {
	prev := math.Inf(1)
	var runtimes []float64
	for _, ngpus := range []int{16, 32, 64, 128, 256, 512, 1024} {
		m := modelFor(t, ngpus, 8)
		rt := m.WorstRuntime()
		if rt <= 0 {
			t.Fatalf("ngpus=%d: runtime %g", ngpus, rt)
		}
		if rt >= prev {
			t.Fatalf("ngpus=%d: runtime %g did not improve on %g", ngpus, rt, prev)
		}
		runtimes = append(runtimes, rt)
		prev = rt
	}
	// Early doublings are near-linear (speedup ≥ 1.6×), late ones are
	// not (speedup ≤ 1.9× and degrading).
	first := runtimes[0] / runtimes[1]
	last := runtimes[len(runtimes)-2] / runtimes[len(runtimes)-1]
	if first < 1.6 {
		t.Fatalf("early doubling speedup %.2f, want near-linear", first)
	}
	if last >= first {
		t.Fatalf("scaling does not flatten: early %.2f vs late %.2f", first, last)
	}
}

// Sanity against the paper's headline: tomo_00029 → 4096³ on 1024 GPUs in
// ~11.5s measured, with the projection somewhat below. The model should
// land in the same ballpark (seconds, not minutes).
func TestPaperScaleBallpark(t *testing.T) {
	m := modelFor(t, 1024, 4)
	rt := m.WorstRuntime()
	if rt < 1 || rt > 60 {
		t.Fatalf("1024-GPU projected runtime %.1fs outside [1,60]s ballpark", rt)
	}
}

func TestGUPS(t *testing.T) {
	sys := paperSystem()
	updates := float64(int64(sys.NX) * int64(sys.NY) * int64(sys.NZ) * int64(sys.NP))
	if got := GUPS(sys, 10); math.Abs(got-updates/1e10) > 1e-6 {
		t.Fatalf("GUPS = %g", got)
	}
	if GUPS(sys, 0) != 0 {
		t.Fatal("GUPS of zero runtime must be 0")
	}
}

// The batch baseline's runtime stops improving (and eventually degrades)
// with more ranks: the global reduce's log2(N) rounds and the single root
// writer grow with scale while only the kernel shrinks.
func TestBaselineRuntimeShape(t *testing.T) {
	sys := paperSystem()
	var runtimes []float64
	for _, ranks := range []int{2, 8, 1024} {
		rt, err := BaselineRuntime(sys, ranks, 8, ABCI())
		if err != nil {
			t.Fatal(err)
		}
		if rt <= 0 {
			t.Fatalf("ranks=%d: runtime %g", ranks, rt)
		}
		runtimes = append(runtimes, rt)
	}
	if runtimes[1] >= runtimes[0] {
		t.Fatalf("baseline should still improve 2→8 ranks: %v", runtimes)
	}
	if runtimes[2] <= runtimes[1] {
		t.Fatalf("baseline should degrade 8→1024 ranks (global reduce dominates): %v", runtimes)
	}
	// And our decomposition beats it everywhere at scale.
	m := modelFor(t, 1024, 4)
	if ours := m.WorstRuntime(); ours >= runtimes[2] {
		t.Fatalf("our projected runtime %g not below baseline %g at 1024 ranks", ours, runtimes[2])
	}
	// Validation.
	if _, err := BaselineRuntime(sys, 0, 8, ABCI()); err == nil {
		t.Error("expected ranks error")
	}
	if _, err := BaselineRuntime(sys, 8, 0, ABCI()); err == nil {
		t.Error("expected chunks error")
	}
	bad := ABCI()
	bad.BWStore = 0
	if _, err := BaselineRuntime(sys, 8, 8, bad); err == nil {
		t.Error("expected params error")
	}
}

func TestMeasureProducesValidParams(t *testing.T) {
	p, err := Measure(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.THBP < 1e5 {
		t.Fatalf("implausibly low BP throughput %g", p.THBP)
	}
}
