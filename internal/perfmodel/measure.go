package perfmodel

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

// Measure runs the micro-benchmarks of Section 5 on this machine and
// returns the resulting parameter set. The paper measures its parameters
// with IOR-style storage probes, Intel MPI benchmarks and the CUDA SDK;
// here each probe exercises the corresponding subsystem of this repository
// so the model's inputs describe the code that actually runs. tmpDir
// receives the storage probe files; workers bounds CPU parallelism.
func Measure(tmpDir string, workers int) (Params, error) {
	p := Params{Name: "local"}

	// Storage probes: sequential write + read of a 32 MiB file.
	const probeBytes = 32 << 20
	buf := make([]byte, probeBytes)
	for i := range buf {
		buf[i] = byte(i)
	}
	path := filepath.Join(tmpDir, "perfmodel.probe")
	start := time.Now()
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return p, fmt.Errorf("perfmodel: store probe: %w", err)
	}
	p.BWStore = probeBytes / secondsSince(start)
	start = time.Now()
	if _, err := os.ReadFile(path); err != nil {
		return p, fmt.Errorf("perfmodel: load probe: %w", err)
	}
	p.BWLoad = probeBytes / secondsSince(start)
	os.Remove(path)

	// Filtering probe.
	const nu, rows = 1024, 256
	fdk, err := filter.NewFDK(filter.Config{NU: nu, NV: rows, DU: 0.5, DV: 0.5, DSD: 350})
	if err != nil {
		return p, err
	}
	data := make([]float32, nu*rows)
	start = time.Now()
	if err := fdk.FilterRows(data, rows, func(i int) int { return i % rows }, workers); err != nil {
		return p, err
	}
	p.THFilter = float64(len(data)*4) / secondsSince(start)

	// Back-projection probe.
	sys := &geometry.System{
		DSO: 250, DSD: 350,
		NU: 128, NV: 128, DU: 0.5, DV: 0.5, NP: 32,
		NX: 64, NY: 64, NZ: 32, DX: 0.25, DY: 0.25, DZ: 0.25,
	}
	stack, err := projection.NewStack(sys.NU, sys.NP, sys.NV)
	if err != nil {
		return p, err
	}
	mats := make([]geometry.Mat34x4, sys.NP)
	for i := range mats {
		mats[i] = sys.Matrix(sys.Angle(i)).ToKernel()
	}
	vol, err := volume.New(sys.NX, sys.NY, sys.NZ)
	if err != nil {
		return p, err
	}
	dev := device.New("probe", 0, workers)
	start = time.Now()
	if err := backproject.Batch(dev, stack, mats, vol); err != nil {
		return p, err
	}
	p.THBP = float64(int64(vol.Voxels())*int64(sys.NP)) / secondsSince(start)

	// Memory-bandwidth probe stands in for PCIe (host↔"device" copies
	// are memcpys here).
	src := make([]float32, 8<<20)
	dst := make([]float32, 8<<20)
	start = time.Now()
	copy(dst, src)
	copy(src, dst)
	p.BWPCI = float64(len(src)*4*2) / secondsSince(start)

	// Reduce throughput: element-wise float32 accumulation.
	start = time.Now()
	for i := range dst {
		dst[i] += src[i]
	}
	p.THReduce = float64(len(dst)*4) / secondsSince(start)

	return p, p.Validate()
}

// secondsSince returns the elapsed seconds with a floor that avoids
// divide-by-zero on very fast probes.
func secondsSince(t time.Time) float64 {
	s := time.Since(t).Seconds()
	if s < 1e-9 {
		return 1e-9
	}
	return s
}
