// Package perfmodel implements the analytical performance model of
// Section 5 of the paper: per-batch stage costs (Equations 13–16), the
// pipelined total-runtime projection of Equation 17, and the
// micro-benchmark parameter set the model is fed with (the paper measures
// BWload, THflt, THbp, THreduce and BWpci on ABCI; this package carries the
// published ABCI values and can also measure this machine's equivalents).
package perfmodel

import (
	"fmt"

	"distfdk/internal/core"
	"distfdk/internal/geometry"
)

// Params are the micro-benchmark inputs of the model. All rates are
// bytes/second except THbp, which is voxel-projection updates/second (the
// GUPS unit scaled by 1e9).
type Params struct {
	Name string
	// BWLoad is the per-rank throughput of loading projections from
	// local storage.
	BWLoad float64
	// BWStore is the aggregate parallel-filesystem write throughput,
	// shared by all concurrent writers.
	BWStore float64
	// THFilter is the per-rank filtering throughput (bytes/s of
	// projection data).
	THFilter float64
	// THBP is the per-device back-projection throughput in
	// updates/second (1 GUPS = 1e9).
	THBP float64
	// THReduce is the per-rank MPI_Reduce throughput (bytes/s).
	THReduce float64
	// BWPCI is the host↔device interconnect throughput per device.
	BWPCI float64
}

// Validate checks that every rate is positive.
func (p Params) Validate() error {
	for _, v := range []struct {
		name string
		rate float64
	}{
		{"BWLoad", p.BWLoad}, {"BWStore", p.BWStore}, {"THFilter", p.THFilter},
		{"THBP", p.THBP}, {"THReduce", p.THReduce}, {"BWPCI", p.BWPCI},
	} {
		if v.rate <= 0 {
			return fmt.Errorf("perfmodel: %s = %g must be positive", v.name, v.rate)
		}
	}
	return nil
}

// ABCI returns the parameter set of the paper's evaluation platform: V100
// GPUs behind PCIe 3.0 ×16 (~12 GB/s effective), NVMe local storage
// (~2 GB/s per rank), IPP filtering (~4 GB/s/rank over 10 cores/rank),
// ~29 GB/s aggregate Lustre store bandwidth (§6.3 reports
// BWstore ≈ 28.5 GB/s), ~118 GUPS back-projection (Table 5 reports
// 111–129 GUPS on V100) and ~5 GB/s MPI_Reduce over InfiniBand EDR.
func ABCI() Params {
	return Params{
		Name:     "abci-v100",
		BWLoad:   2.0e9,
		BWStore:  28.5e9,
		THFilter: 4.0e9,
		THBP:     118e9,
		THReduce: 5.0e9,
		BWPCI:    12.0e9,
	}
}

// StageTimes are the per-batch costs of Equation 16's terms for one rank.
type StageTimes struct {
	Load, Filter, H2D, BP, D2H, Reduce, Store float64 // seconds
}

// CPU returns T_CPU^i = T_load + T_filter (Equation 16).
func (s StageTimes) CPU() float64 { return s.Load + s.Filter }

// GPU returns T_GPU^i = T_H2D + T_bp + T_D2H (Equation 16).
func (s StageTimes) GPU() float64 { return s.H2D + s.BP + s.D2H }

// Model evaluates the Section 5 performance model for a decomposition
// plan.
type Model struct {
	Plan   *core.Plan
	Params Params
}

// New builds a model after validating its inputs.
func New(plan *core.Plan, params Params) (*Model, error) {
	if plan == nil {
		return nil, fmt.Errorf("perfmodel: plan is required")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{Plan: plan, Params: params}, nil
}

const eta = 4 // sizeof(float32), the η of the paper

// Batch returns the stage times of batch c for a rank of group g
// (Equations 13–15 and the T_D2H/T_reduce/T_store definitions).
func (m *Model) Batch(g, c int) StageTimes {
	p := m.Plan
	sys := p.Sys
	var prev geometry.RowRange
	if c > 0 {
		prev = p.SlabRows(g, c-1)
	}
	cur := p.SlabRows(g, c)
	_, nz := p.SlabZ(g, c)
	if nz == 0 {
		return StageTimes{}
	}
	diff := geometry.DifferentialRows(prev, cur)
	share := sys.NP / p.NRanksPerGroup
	// Equation 13: the first batch loads SizeAB, later ones SizeBB.
	loadBytes := float64(eta) * float64(int64(sys.NU)*int64(share)*int64(diff.Len()))
	// Equation 15: the slab this batch produces.
	slabBytes := float64(eta) * float64(int64(sys.NX)*int64(sys.NY)*int64(nz))
	// Equation 14: updates = Nx·Ny·Nb·Np/Nr.
	updates := float64(int64(sys.NX) * int64(sys.NY) * int64(nz) * int64(share))

	return StageTimes{
		Load:   loadBytes / m.Params.BWLoad,
		Filter: loadBytes / m.Params.THFilter,
		H2D:    loadBytes / m.Params.BWPCI,
		BP:     updates / m.Params.THBP,
		D2H:    slabBytes / m.Params.BWPCI,
		Reduce: reduceTime(slabBytes, p.NRanksPerGroup, m.Params.THReduce),
		// The PFS is shared: Ng groups store concurrently, so each
		// sees 1/Ng of the aggregate bandwidth.
		Store: slabBytes / (m.Params.BWStore / float64(p.NGroups)),
	}
}

// reduceTime models a binomial-tree reduce of `bytes` over nr ranks:
// ⌈log2(nr)⌉ sequential rounds at THReduce.
func reduceTime(bytes float64, nr int, th float64) float64 {
	if nr <= 1 {
		return 0
	}
	rounds := 0
	for n := nr - 1; n > 0; n >>= 1 {
		rounds++
	}
	return float64(rounds) * bytes / th
}

// Runtime evaluates Equation 17: the pipeline startup terms of batch 0
// plus the maximum over the per-resource sums of the remaining batches
// (perfect overlap assumption).
func (m *Model) Runtime(g int) float64 {
	b0 := m.Batch(g, 0)
	total := b0.CPU() + b0.GPU() + b0.Reduce + b0.Store
	var cpu, gpu, reduce, store float64
	for c := 1; c < m.Plan.BatchCount; c++ {
		b := m.Batch(g, c)
		cpu += b.CPU()
		gpu += b.GPU()
		reduce += b.Reduce
		store += b.Store
	}
	return total + max4(cpu, gpu, reduce, store)
}

// WorstRuntime returns the projected runtime of the slowest group — the
// "Projected" series of Figures 13 and 14.
func (m *Model) WorstRuntime() float64 {
	worst := 0.0
	for g := 0; g < m.Plan.NGroups; g++ {
		if t := m.Runtime(g); t > worst {
			worst = t
		}
	}
	return worst
}

// GUPS converts a runtime into the paper's throughput metric
// Nx·Ny·Nz·Np / (T·1e9) (footnote 2 of Section 6.2).
func GUPS(sys *geometry.System, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	updates := float64(int64(sys.NX) * int64(sys.NY) * int64(sys.NZ) * int64(sys.NP))
	return updates / (seconds * 1e9)
}

func max4(a, b, c, d float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}
