package perfmodel

import (
	"fmt"

	"distfdk/internal/geometry"
)

// BaselineRuntime models the batch-decomposition frameworks of Table 2
// (iFDK / Lu et al.) at paper scale: ranks split only the Np axis, every
// rank holds full-height projections, the volume is processed in `chunks`
// Z chunks with the rank's whole share re-uploaded per chunk, each chunk
// is reduced by one global collective over all ranks (⌈log2 N⌉ rounds of
// chunk-sized messages) and stored by the single root writer. The stages
// of one chunk serialise behind the global collective, which is what
// prevents the end-to-end pipelining the paper's decomposition enables.
func BaselineRuntime(sys *geometry.System, ranks, chunks int, p Params) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if ranks <= 0 {
		return 0, fmt.Errorf("perfmodel: ranks %d must be positive", ranks)
	}
	if chunks <= 0 || chunks > sys.NZ {
		return 0, fmt.Errorf("perfmodel: chunk count %d outside [1,%d]", chunks, sys.NZ)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	share := float64(sys.NP) / float64(ranks)
	shareBytes := float64(eta) * float64(int64(sys.NU)*int64(sys.NV)) * share
	volBytes := float64(eta) * float64(int64(sys.NX)*int64(sys.NY)*int64(sys.NZ))
	chunkBytes := volBytes / float64(chunks)
	updatesPerChunk := float64(int64(sys.NX)*int64(sys.NY)*int64(sys.NZ)) / float64(chunks) * share

	total := shareBytes/p.BWLoad + shareBytes/p.THFilter
	rounds := 0
	for n := ranks - 1; n > 0; n >>= 1 {
		rounds++
	}
	for c := 0; c < chunks; c++ {
		total += shareBytes / p.BWPCI                      // re-upload per chunk
		total += updatesPerChunk / p.THBP                  // back-projection
		total += chunkBytes / p.BWPCI                      // D2H
		total += float64(rounds) * chunkBytes / p.THReduce // global reduce
		total += chunkBytes / p.BWStore                    // single root writer
	}
	return total, nil
}
