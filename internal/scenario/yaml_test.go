package scenario

import (
	"strings"
	"testing"
)

func TestParseYAMLShapes(t *testing.T) {
	doc := `# leading comment
name: demo
description: "quoted: with colon # not a comment"
world:
  groups: 2
  ranks: 2
faults:
  - op: load
    count: every
  - op: send
kills:
  - rank: 1
    batch: 2
list:
  - one
  - two # trailing comment
`
	root, err := parseYAML("demo.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.vals["name"].scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	desc := root.vals["description"]
	if !desc.quoted || desc.scalar != "quoted: with colon # not a comment" {
		t.Errorf("description = %+v", desc)
	}
	w := root.vals["world"]
	if w.kind != mapNode || w.vals["ranks"].scalar != "2" {
		t.Errorf("world = %+v", w)
	}
	f := root.vals["faults"]
	if f.kind != seqNode || len(f.items) != 2 {
		t.Fatalf("faults = %+v", f)
	}
	if f.items[0].vals["count"].scalar != "every" {
		t.Errorf("faults[0] = %+v", f.items[0])
	}
	if f.items[1].vals["op"].scalar != "send" {
		t.Errorf("faults[1] = %+v", f.items[1])
	}
	if k := root.vals["kills"].items[0]; k.vals["batch"].scalar != "2" {
		t.Errorf("kills[0] = %+v", k)
	}
	l := root.vals["list"]
	if len(l.items) != 2 || l.items[1].scalar != "two" {
		t.Errorf("list = %+v", l)
	}
	// Key lines are tracked for decoder errors.
	if root.keyLn["world"] != 4 {
		t.Errorf("world declared on line %d, want 4", root.keyLn["world"])
	}
}

// TestParseYAMLLineEndingsAndComments pins the robustness contract for
// files that crossed a Windows editor, git autocrlf, or an old-Mac tool:
// CRLF and CR-only line endings parse identically to LF, full-line
// comments are insignificant whatever their indentation (spaces or tabs),
// and error line numbers stay aligned with what an editor shows.
func TestParseYAMLLineEndingsAndComments(t *testing.T) {
	base := "name: demo\nworld:\n  groups: 2\n  ranks: 2\nfaults:\n  - op: load\n"
	check := func(t *testing.T, doc string) {
		t.Helper()
		root, err := parseYAML("demo.yaml", []byte(doc))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if root.vals["name"].scalar != "demo" {
			t.Errorf("name = %q", root.vals["name"].scalar)
		}
		if root.vals["world"].vals["ranks"].scalar != "2" {
			t.Errorf("world.ranks = %+v", root.vals["world"])
		}
		if f := root.vals["faults"]; len(f.items) != 1 || f.items[0].vals["op"].scalar != "load" {
			t.Errorf("faults = %+v", f)
		}
	}
	t.Run("crlf", func(t *testing.T) {
		check(t, strings.ReplaceAll(base, "\n", "\r\n"))
	})
	t.Run("cr-only", func(t *testing.T) {
		check(t, strings.ReplaceAll(base, "\n", "\r"))
	})
	t.Run("mixed-endings", func(t *testing.T) {
		check(t, "name: demo\r\nworld:\r  groups: 2\n  ranks: 2\r\nfaults:\n  - op: load\r\n")
	})
	t.Run("comment-only-lines-any-indentation", func(t *testing.T) {
		check(t, "# top comment\nname: demo\n\t# tab-indented comment\nworld:\n"+
			"    # space-indented comment\n  groups: 2\n \t # mixed-indent comment\n"+
			"  ranks: 2\nfaults:\n  - op: load\n")
	})
	t.Run("crlf-with-comments", func(t *testing.T) {
		check(t, strings.ReplaceAll(
			"# header\r\nname: demo\r\n\t# note\r\nworld:\r\n  groups: 2\r\n  ranks: 2\r\nfaults:\r\n  - op: load\r\n",
			"", ""))
	})
	// Line numbers in errors count normalised lines — identical across
	// ending styles, and unaffected by skipped comment-only lines.
	for _, tc := range []struct{ name, sep string }{
		{"lf-line-numbers", "\n"}, {"crlf-line-numbers", "\r\n"}, {"cr-line-numbers", "\r"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doc := strings.ReplaceAll("# one\na: 1\n\t# three\na:1\n", "\n", tc.sep)
			_, err := parseYAML("bad.yaml", []byte(doc))
			if err == nil || !strings.Contains(err.Error(), "bad.yaml:4: missing space") {
				t.Fatalf("error = %v, want bad.yaml:4: missing space", err)
			}
		})
	}
	// Tabs indenting real content are still rejected, with the right line.
	if _, err := parseYAML("bad.yaml", []byte("a: 1\n\tb: 2\n")); err == nil ||
		!strings.Contains(err.Error(), "bad.yaml:2: tab in indentation") {
		t.Fatalf("tab-indented content: error = %v, want bad.yaml:2: tab in indentation", err)
	}
}

// TestParseYAMLErrors pins the loader's contract: every malformed file is
// rejected with the file name and the offending line number.
func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // must appear in the error
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "bad.yaml:2: tab in indentation"},
		{"duplicate key", "a: 1\nb: 2\na: 3\n", "bad.yaml:3: duplicate key \"a\" (first at line 1)"},
		{"key without value", "a: 1\nb:\nc: 2\n", "bad.yaml:2: key \"b\" has no value"},
		{"dangling final key", "a: 1\nb:\n", "bad.yaml:2: key \"b\" has no value"},
		{"missing space", "a:1\n", "bad.yaml:1: missing space after \"a\""},
		{"not a mapping line", "just words\n", "bad.yaml:1: expected \"key: value\""},
		{"invalid key", "a b: 1\n", "bad.yaml:1: invalid key"},
		{"nested sequence", "a:\n  - - x\n", "bad.yaml:2: nested sequences"},
		{"seq item in map", "a: 1\n- b\n", "bad.yaml:2: sequence item inside a mapping"},
		{"over-indent", "a: 1\n   b: 2\n", "bad.yaml:2: unexpected indentation"},
		{"top-level indented", "  a: 1\n", "bad.yaml:1: top-level block must start at column 0"},
		{"empty item", "a:\n  -\nb: 1\n", "bad.yaml:2: empty sequence item"},
		{"top-level sequence", "- a\n- b\n", "must be a mapping"},
		{"empty file", "# only comments\n---\n", "empty scenario file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML("bad.yaml", []byte(tc.doc))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestStripComment(t *testing.T) {
	cases := [][2]string{
		{"value # comment", "value"},
		{"# whole line", ""},
		{"'a # b'", "'a # b'"},
		{`"a # b" # real`, `"a # b"`},
		{"no#comment", "no#comment"}, // '#' not preceded by space
	}
	for _, c := range cases {
		if got := stripComment(c[0]); got != c[1] {
			t.Errorf("stripComment(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}
