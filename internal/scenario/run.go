package scenario

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"distfdk/internal/core"
	"distfdk/internal/experiments"
	"distfdk/internal/fault"
	"distfdk/internal/mpi"
	"distfdk/internal/mpi/nettrans"
	"distfdk/internal/telemetry"
)

// stageNames are the per-batch pipeline spans; a maximal run of
// consecutive stage spans sharing one batch tag is one batch execution
// (consecutive, not merely same-tag: a supervised restart re-runs batch
// indices, and grouping by tag alone would fuse the two executions into
// one giant phantom latency).
var stageNames = map[string]bool{
	"load": true, "filter": true, "upload": true,
	"backproject": true, "reduce": true, "store": true,
}

// RunMetrics is the harvest of one replay.
type RunMetrics struct {
	Run     int    `json:"run"`
	Outcome string `json:"outcome"`
	// Wall is the replay's wall-clock time in nanoseconds.
	Wall int64 `json:"wall_ns"`
	// Batches counts executed (not skipped) batches across all ranks.
	Batches int64 `json:"batches"`
	// BatchesPerSec is Batches over Wall.
	BatchesPerSec float64 `json:"batches_per_sec"`
	// P50/P95BatchLatency are quantiles of per-batch wall time (ns).
	P50BatchLatency float64 `json:"p50_batch_latency_ns"`
	P95BatchLatency float64 `json:"p95_batch_latency_ns"`
	// P95ReduceLatency is the p95 reduce-chunk latency (ns).
	P95ReduceLatency float64 `json:"p95_reduce_latency_ns"`
	// Recovery is the worst failed-attempt-end → first-post-restart
	// back-projection interval (ns); 0 when nothing restarted.
	Recovery float64 `json:"recovery_ns"`
	Retries  int64   `json:"retries"`
	// Backoff is the total retry backoff slept (ns).
	Backoff int64 `json:"backoff_ns"`
	// Faults counts schedule firings (errors and delays).
	Faults   int64 `json:"faults"`
	Restarts int64 `json:"restarts"`
	Lost     int64 `json:"lost_ranks"`
	// CritCommFraction / CritWaitFraction attribute the replay's critical
	// path (telemetry.ComputeCriticalPath): the share of its makespan
	// spent in communication and idle waits.
	CritCommFraction float64 `json:"critical_path_comm_fraction"`
	CritWaitFraction float64 `json:"critical_path_wait_fraction"`
	// Reconnects/Retransmits/CrcErrors are the socket transport's recovery
	// counters (zero on a channel world): connection re-establishments
	// (both link ends count each sever), frames re-sent through replay,
	// and frames rejected by the CRC check.
	Reconnects  int64  `json:"reconnects,omitempty"`
	Retransmits int64  `json:"retransmits,omitempty"`
	CrcErrors   int64  `json:"crc_errors,omitempty"`
	Err         string `json:"error,omitempty"`
}

// world is the reusable part of a scenario replay: the synthetic dataset
// (projections included — the expensive part) and the plan. Both are
// read-only during runs, so every replay shares them.
type world struct {
	env  *experiments.Scenario
	plan *core.Plan
}

func buildWorld(cfg *Config) (*world, error) {
	env, err := experiments.BuildScenario(cfg.World.Dataset, cfg.World.Div, cfg.World.N, runtime.NumCPU())
	if err != nil {
		return nil, fmt.Errorf("%s: world: %w", cfg.Path, err)
	}
	plan, err := core.NewPlan(env.Sys, cfg.World.Groups, cfg.World.Ranks, cfg.World.Batches)
	if err != nil {
		return nil, fmt.Errorf("%s: world: %w", cfg.Path, err)
	}
	return &world{env: env, plan: plan}, nil
}

// memJournal is an in-memory CheckpointLog so supervised replays resume
// from the kill point without touching the filesystem.
type memJournal struct {
	mu   sync.Mutex
	done map[int]bool
}

func newMemJournal() *memJournal { return &memJournal{done: map[int]bool{}} }

func (j *memJournal) Done(z0 int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[z0]
}

func (j *memJournal) Record(z0, batch int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done[z0] = true
	return nil
}

// replay executes the scenario once. inject selects the arm: the injected
// arm compiles the scenario's fault schedule, the baseline arm runs
// fault-free on the same world. withTelemetry=false runs dark (for the
// overhead_ratio metric) and harvests only wall time and outcome.
func replay(cfg *Config, w *world, runIdx int, inject, withTelemetry bool) RunMetrics {
	m := RunMetrics{Run: runIdx}

	var run *telemetry.Run
	if withTelemetry {
		run = telemetry.NewRun(w.plan.Ranks())
	}
	var in *fault.Injector
	if inject {
		in = cfg.Injector(runIdx)
	}
	retry := cfg.RetryPolicy()
	if retry == nil && inject && needsRetry(cfg) {
		// Transient error rules without a retry section would fail every
		// injected run on the first hit; default to the stock policy so
		// the scenario asserts absorption unless it opts out by expecting
		// a non-success outcome.
		retry = &fault.RetryPolicy{Seed: cfg.Seed}
	}
	deadline := cfg.Deadline
	if deadline == 0 {
		switch {
		case cfg.World.SocketTransport():
			// Socket worlds always get a deadline, kills or not: a wire
			// fault that escapes the link's recovery must surface typed,
			// not hang the gate.
			deadline = 20 * time.Second
		case cfg.Supervised():
			deadline = 10 * time.Second
		}
	}
	sink, err := core.NewVolumeSink(w.env.Sys)
	if err != nil {
		m.Outcome, m.Err = OutcomeError, err.Error()
		return m
	}
	opts := core.ClusterOptions{
		Plan:               w.plan,
		Source:             w.env.Source,
		Output:             sink,
		FaultInjector:      in,
		Retry:              retry,
		CollectiveDeadline: deadline,
		Telemetry:          run,
	}

	start := time.Now()
	var rep *core.SuperviseReport
	switch {
	case cfg.World.SocketTransport():
		rep, err = runSocketArm(cfg, w, opts, run)
	case cfg.Supervised():
		opts.Checkpoint = newMemJournal()
		sup := core.SuperviseOptions{Cluster: opts}
		if cfg.Supervise != nil {
			sup.MaxRestarts = cfg.Supervise.MaxRestarts
			sup.RestartBackoff = cfg.Supervise.RestartBackoff
		}
		rep, err = core.Supervise(sup)
	default:
		_, err = core.RunDistributed(opts)
	}
	m.Wall = int64(time.Since(start))

	m.Outcome = classify(err)
	if err != nil {
		m.Err = err.Error()
	}
	if in != nil {
		m.Faults = int64(in.Fired())
	}
	if rep != nil {
		m.Restarts = int64(rep.Restarts)
		m.Lost = int64(rep.TotalLost)
	}
	if run == nil {
		return m
	}

	snaps := run.Snapshots()
	m.Batches = telemetry.CounterTotal(snaps, "core.batches")
	if m.Wall > 0 {
		m.BatchesPerSec = float64(m.Batches) / (float64(m.Wall) / float64(time.Second))
	}
	m.Retries = telemetry.CounterTotal(snaps, "fault.retries")
	m.Backoff = telemetry.CounterTotal(snaps, "fault.backoff_ns")

	lat := batchLatencies(snaps)
	m.P50BatchLatency = quantileOf(lat, 0.5)
	m.P95BatchLatency = quantileOf(lat, 0.95)
	if h, ok := telemetry.MergeHistograms(snaps, "mpi.reduce_chunk_ns"); ok {
		m.P95ReduceLatency = h.Quantile(0.95)
	}
	m.Recovery = recoveryTime(snaps)
	if cp := telemetry.ComputeCriticalPath(snaps); cp != nil {
		m.CritCommFraction = cp.CommFraction
		m.CritWaitFraction = cp.WaitFraction
	}
	m.Reconnects = telemetry.CounterTotal(snaps, "transport.reconnects")
	m.Retransmits = telemetry.CounterTotal(snaps, "transport.retransmits")
	m.CrcErrors = telemetry.CounterTotal(snaps, "transport.crc_errors")
	return m
}

// runSocketArm replays one arm over an in-process socket fleet: one
// nettrans.Node per declared process wired through real kernel sockets,
// the coordinator (proc 0) owning the volume sink and the supervise
// telemetry, followers re-running the same batch loop and the same
// shrink decisions against a discard sink. The shared fault injector
// doubles as the wire chaos schedule (nettrans fires frame-drop /
// frame-corrupt / frame-dup / frame-delay / sever rules below the frame
// codec) and as the in-pipeline schedule (load/store rules, kills).
func runSocketArm(cfg *Config, w *world, opts core.ClusterOptions, run *telemetry.Run) (*core.SuperviseReport, error) {
	ncfg := nettrans.Config{
		Network: cfg.World.Transport,
		// CI-scale liveness: fast heartbeats so an injected death is
		// detected well inside the collective deadline.
		Heartbeat:  25 * time.Millisecond,
		DeathAfter: 2 * time.Second,
		Injector:   opts.FaultInjector,
	}
	if run != nil {
		// Transport counters land in the run's shared registry, so the
		// harvest reads them from the same snapshots as everything else.
		ncfg.Telemetry = run.Shared()
	}
	if cfg.World.Transport == "unix" {
		dir, err := os.MkdirTemp("", "distfdk-scenario-*")
		if err != nil {
			return nil, fmt.Errorf("scenario: unix socket dir: %w", err)
		}
		defer os.RemoveAll(dir)
		ncfg.Addr = filepath.Join(dir, "hub.sock")
	}
	fl, err := nettrans.NewFleet(cfg.World.Procs, ncfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: socket fleet: %w", err)
	}
	defer fl.Close()

	journal := newMemJournal()
	errs := make([]error, len(fl.Nodes))
	reps := make([]*core.SuperviseReport, len(fl.Nodes))
	var wg sync.WaitGroup
	for i, n := range fl.Nodes {
		o := opts
		o.Launch = n.Launcher(w.plan.NRanksPerGroup)
		if i != 0 {
			o.Output = core.DiscardSink{}
		}
		wg.Add(1)
		go func(i int, o core.ClusterOptions) {
			defer wg.Done()
			if cfg.Supervised() {
				o.Checkpoint = journal
				sup := core.SuperviseOptions{Cluster: o, Follower: i != 0}
				if cfg.Supervise != nil {
					sup.MaxRestarts = cfg.Supervise.MaxRestarts
					sup.RestartBackoff = cfg.Supervise.RestartBackoff
				}
				reps[i], errs[i] = core.Supervise(sup)
			} else {
				_, errs[i] = core.RunDistributed(o)
			}
		}(i, o)
	}
	wg.Wait()
	// The coordinator's verdict is the arm's verdict (its error is typed
	// for classify). A follower failing while the coordinator succeeded
	// means the fleet's views diverged — surface it, never mask it.
	if errs[0] != nil {
		return reps[0], errs[0]
	}
	for i, e := range errs[1:] {
		if e != nil {
			return reps[0], fmt.Errorf("scenario: follower proc %d diverged from coordinator: %w", i+1, e)
		}
	}
	return reps[0], nil
}

// needsRetry reports whether the schedule contains transient error rules
// (delay-free): the ones a RetryPolicy exists to absorb. Wire-level rules
// don't count — the link's CRC/sequence/replay machinery absorbs those
// below the pipeline, no retry policy involved.
func needsRetry(cfg *Config) bool {
	for _, f := range cfg.Faults {
		if !isWireOp(f.Op) && f.Class != "permanent" && f.Delay == 0 {
			return true
		}
	}
	return false
}

// classify maps a replay error onto the outcome vocabulary.
func classify(err error) string {
	switch {
	case err == nil:
		return OutcomeSuccess
	case errors.Is(err, core.ErrRestartBudget):
		return OutcomeRestartBudget
	case errors.Is(err, core.ErrWorldTooSmall):
		return OutcomeWorldTooSmall
	case errors.Is(err, mpi.ErrRankLost):
		return OutcomeRankLost
	default:
		return OutcomeError
	}
}

// batchLatencies extracts per-batch wall times (ns) from every rank's
// span stream: each maximal run of consecutive stage spans with one batch
// tag is a batch execution, its latency the envelope max(End)-min(Start).
func batchLatencies(snaps []telemetry.Snapshot) []float64 {
	var out []float64
	for _, s := range snaps {
		if s.Rank == telemetry.SharedRank {
			continue
		}
		curBatch := -1
		var start, end time.Duration
		flush := func() {
			if curBatch >= 0 && end > start {
				out = append(out, float64(end-start))
			}
			curBatch = -1
		}
		for _, sp := range s.Spans {
			if !stageNames[sp.Name] {
				flush()
				continue
			}
			if sp.Batch != curBatch {
				flush()
				curBatch, start, end = sp.Batch, sp.Start, sp.End
				continue
			}
			if sp.Start < start {
				start = sp.Start
			}
			if sp.End > end {
				end = sp.End
			}
		}
		flush()
	}
	sort.Float64s(out)
	return out
}

// recoveryTime measures shrink-and-resume reaction: for every failed
// supervise attempt, the gap from the attempt's end to the earliest
// back-projection that starts after it (the relaunched world doing real
// work again). The worst gap across restarts is the scenario's recovery
// time; 0 when nothing restarted.
func recoveryTime(snaps []telemetry.Snapshot) float64 {
	var attempts []telemetry.Span
	for _, s := range snaps {
		if s.Rank != telemetry.SharedRank {
			continue
		}
		for _, sp := range s.Spans {
			if sp.Name == "supervise.attempt" {
				attempts = append(attempts, sp)
			}
		}
	}
	if len(attempts) < 2 {
		return 0
	}
	sort.Slice(attempts, func(i, j int) bool { return attempts[i].Batch < attempts[j].Batch })
	worst := 0.0
	for _, a := range attempts[:len(attempts)-1] {
		first := time.Duration(math.MaxInt64)
		for _, s := range snaps {
			if s.Rank == telemetry.SharedRank {
				continue
			}
			for _, sp := range s.Spans {
				if sp.Name == "backproject" && sp.Start >= a.End && sp.End < first {
					first = sp.End
				}
			}
		}
		if first == math.MaxInt64 {
			continue // attempt never reached a post-restart back-projection
		}
		if gap := float64(first - a.End); gap > worst {
			worst = gap
		}
	}
	return worst
}

// quantileOf interpolates quantile q over sorted (ascending) values.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// RobustMedian aggregates run samples: Tukey-fence outliers (outside
// [Q1-1.5·IQR, Q3+1.5·IQR]) are dropped, then the median of the
// survivors is returned. With ≤ 2 samples nothing is dropped. This is
// what makes gate verdicts stable run-to-run: one scheduler hiccup in N
// replays shifts an IQR-trimmed median far less than a mean.
func RobustMedian(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if len(s) > 2 {
		q1 := quantileOf(s, 0.25)
		q3 := quantileOf(s, 0.75)
		iqr := q3 - q1
		lo, hi := q1-1.5*iqr, q3+1.5*iqr
		kept := s[:0]
		for _, v := range s {
			if v >= lo && v <= hi {
				kept = append(kept, v)
			}
		}
		s = kept
	}
	return quantileOf(s, 0.5)
}

// Progress receives replay milestones (nil discards them).
type Progress func(format string, args ...any)

// Execute replays one scenario: cfg.Runs baseline runs, cfg.Runs injected
// runs (plus cfg.Runs dark runs when an overhead_ratio gate asks for
// them), aggregates robust metrics over the arms, and evaluates the
// gates. Only infrastructure failures (the world itself cannot be built)
// return an error; replay failures land in the result's outcome gate.
func Execute(cfg *Config, progress Progress) (*ScenarioResult, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Name:        cfg.Name,
		Description: cfg.Description,
		Seed:        cfg.Seed,
		Runs:        cfg.Runs,
		Expect:      cfg.Expect,
		Metrics:     map[string]float64{},
	}
	for i := 0; i < cfg.Runs; i++ {
		progress("%s: baseline run %d/%d", cfg.Name, i+1, cfg.Runs)
		res.Baseline = append(res.Baseline, replay(cfg, w, i, false, true))
	}
	for i := 0; i < cfg.Runs; i++ {
		progress("%s: injected run %d/%d", cfg.Name, i+1, cfg.Runs)
		res.Injected = append(res.Injected, replay(cfg, w, i, true, true))
	}
	if gatesMetric(cfg, "overhead_ratio") {
		for i := 0; i < cfg.Runs; i++ {
			progress("%s: dark (telemetry-off) run %d/%d", cfg.Name, i+1, cfg.Runs)
			res.Dark = append(res.Dark, replay(cfg, w, i, false, false))
		}
	}
	aggregate(cfg, res)
	evaluate(cfg, res)
	return res, nil
}

func gatesMetric(cfg *Config, name string) bool {
	for _, g := range cfg.Gates {
		if g.Metric == name {
			return true
		}
	}
	return false
}

// pick collects one field over an arm's runs.
func pick(runs []RunMetrics, f func(RunMetrics) float64) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		out = append(out, f(r))
	}
	return out
}

// aggregate reduces both arms' runs into the scenario's metric map.
func aggregate(cfg *Config, res *ScenarioResult) {
	inj, base := res.Injected, res.Baseline
	med := func(runs []RunMetrics, f func(RunMetrics) float64) float64 {
		return RobustMedian(pick(runs, f))
	}
	m := res.Metrics
	m["batches_per_sec"] = med(inj, func(r RunMetrics) float64 { return r.BatchesPerSec })
	m["baseline_batches_per_sec"] = med(base, func(r RunMetrics) float64 { return r.BatchesPerSec })
	if m["baseline_batches_per_sec"] > 0 {
		m["throughput_ratio"] = m["batches_per_sec"] / m["baseline_batches_per_sec"]
	}
	m["p50_batch_latency"] = med(inj, func(r RunMetrics) float64 { return r.P50BatchLatency })
	m["p95_batch_latency"] = med(inj, func(r RunMetrics) float64 { return r.P95BatchLatency })
	m["p95_reduce_latency"] = med(inj, func(r RunMetrics) float64 { return r.P95ReduceLatency })
	m["recovery_time"] = med(inj, func(r RunMetrics) float64 { return r.Recovery })
	m["wall_time"] = med(inj, func(r RunMetrics) float64 { return float64(r.Wall) })
	m["retries"] = med(inj, func(r RunMetrics) float64 { return float64(r.Retries) })
	m["backoff_total"] = med(inj, func(r RunMetrics) float64 { return float64(r.Backoff) })
	m["faults_injected"] = med(inj, func(r RunMetrics) float64 { return float64(r.Faults) })
	m["restarts"] = med(inj, func(r RunMetrics) float64 { return float64(r.Restarts) })
	m["lost_ranks"] = med(inj, func(r RunMetrics) float64 { return float64(r.Lost) })
	m["critical_path_comm_fraction"] = med(inj, func(r RunMetrics) float64 { return r.CritCommFraction })
	m["critical_path_wait_fraction"] = med(inj, func(r RunMetrics) float64 { return r.CritWaitFraction })
	m["reconnects"] = med(inj, func(r RunMetrics) float64 { return float64(r.Reconnects) })
	m["retransmits"] = med(inj, func(r RunMetrics) float64 { return float64(r.Retransmits) })
	m["crc_errors"] = med(inj, func(r RunMetrics) float64 { return float64(r.CrcErrors) })
	if len(res.Dark) > 0 {
		darkWall := RobustMedian(pick(res.Dark, func(r RunMetrics) float64 { return float64(r.Wall) }))
		baseWall := RobustMedian(pick(base, func(r RunMetrics) float64 { return float64(r.Wall) }))
		if darkWall > 0 {
			m["overhead_ratio"] = baseWall / darkWall
		}
	}
}

// evaluate renders the gate verdicts, starting with the implicit outcome
// gate: every baseline run must succeed, every injected run must land on
// cfg.Expect. Predictable degradation is the whole point — a run that
// fails differently than declared breaches even if every number is green.
func evaluate(cfg *Config, res *ScenarioResult) {
	res.Pass = true
	outcome := GateResult{Metric: "outcome", Pass: true,
		Detail: fmt.Sprintf("baseline %s, injected %s", OutcomeSuccess, cfg.Expect)}
	for _, r := range res.Baseline {
		if r.Outcome != OutcomeSuccess {
			outcome.Pass = false
			outcome.Detail = fmt.Sprintf("baseline run %d: %s (%s)", r.Run, r.Outcome, r.Err)
			break
		}
	}
	for _, r := range res.Injected {
		if !outcome.Pass {
			break
		}
		if r.Outcome != cfg.Expect {
			outcome.Pass = false
			outcome.Detail = fmt.Sprintf("injected run %d: %s, want %s (%s)", r.Run, r.Outcome, cfg.Expect, r.Err)
		}
	}
	for _, r := range res.Dark {
		if !outcome.Pass {
			break
		}
		if r.Outcome != OutcomeSuccess {
			outcome.Pass = false
			outcome.Detail = fmt.Sprintf("dark run %d: %s (%s)", r.Run, r.Outcome, r.Err)
		}
	}
	res.Gates = append(res.Gates, outcome)
	res.Pass = res.Pass && outcome.Pass

	for _, g := range cfg.Gates {
		v, ok := res.Metrics[g.Metric]
		gr := GateResult{Metric: g.Metric, Value: v, Min: g.Min, Max: g.Max, Pass: true}
		switch {
		case !ok:
			gr.Pass = false
			gr.Detail = "metric was not produced by this scenario"
		case g.Min != nil && v < *g.Min:
			gr.Pass = false
			gr.Detail = fmt.Sprintf("%g below min %g", v, *g.Min)
		case g.Max != nil && v > *g.Max:
			gr.Pass = false
			gr.Detail = fmt.Sprintf("%g above max %g", v, *g.Max)
		}
		res.Gates = append(res.Gates, gr)
		res.Pass = res.Pass && gr.Pass
	}
}
