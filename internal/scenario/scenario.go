// Package scenario is the declarative chaos layer of the framework: fault
// scenarios written in YAML — a world shape, a warmup/inject/recovery
// phase schedule, fault rules on the load/store/send/recv edges, scheduled
// rank kills, and per-scenario SLO gates — compiled into fault.Injector
// configurations and replayed through core.RunDistributed/core.Supervise
// with paired fault-free arms. cmd/slogate drives the replay and turns the
// gate verdicts into a CI release wall: a perf or robustness regression
// fails the build with the breached gate named, instead of being eyeballed
// out of BENCH_*.json appends.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"distfdk/internal/fault"
)

// Config is one fully-validated scenario.
type Config struct {
	// Path is the source file, used in error messages and reports.
	Path string `json:"path,omitempty"`
	// Name identifies the scenario in reports ([a-z0-9-]+).
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed names the deterministic fault schedule; per-run injectors use
	// Seed+run so repeated runs decorrelate delays while staying
	// reproducible.
	Seed int64 `json:"seed"`
	// Runs is how many times each arm is replayed (default 3).
	Runs  int         `json:"runs"`
	World WorldConfig `json:"world"`
	// Phases cuts the batch axis into warmup/inject/recovery windows.
	Phases PhaseConfig  `json:"phases"`
	Faults []FaultRule  `json:"faults,omitempty"`
	Kills  []Kill       `json:"kills,omitempty"`
	Retry  *RetryConfig `json:"retry,omitempty"`
	// Supervise enables the shrink-and-resume supervisor; implied by a
	// non-empty kill schedule.
	Supervise *SuperviseConfig `json:"supervise,omitempty"`
	// Deadline bounds collectives so a dead peer surfaces typed instead of
	// hanging the gate (default 10s whenever kills are scheduled, 20s on
	// socket-transport worlds).
	Deadline time.Duration `json:"deadline,omitempty"`
	// Expect is the demanded outcome of every injected run: "success"
	// (default), "restart-budget", "world-too-small" or "rank-lost" —
	// degradation must be predictable, so even "the run fails" is an
	// assertion, not an accident.
	Expect string `json:"expect"`
	Gates  []Gate `json:"gates"`
}

// WorldConfig shapes the reconstruction the scenario replays: the
// experiments.BuildScenario synthetic twin and the decomposition plan.
type WorldConfig struct {
	Dataset string `json:"dataset"`
	Div     int    `json:"div"`
	N       int    `json:"n"`
	Groups  int    `json:"groups"`
	Ranks   int    `json:"ranks"`
	Batches int    `json:"batches"`
	// Transport selects how ranks talk: "chan" (default) keeps the
	// in-process channel world; "tcp" or "unix" replays every arm over an
	// in-process socket fleet (nettrans) — real kernel sockets, framing,
	// heartbeats and reconnects — which is what makes wire-level fault
	// rules (frame-drop, frame-corrupt, frame-dup, frame-delay, sever)
	// meaningful.
	Transport string `json:"transport,omitempty"`
	// Procs is the socket fleet's process count (hub + workers); required
	// (≥ 2) when Transport is tcp or unix, forbidden otherwise.
	Procs int `json:"procs,omitempty"`
}

// SocketTransport reports whether the world runs over the socket fleet.
func (w WorldConfig) SocketTransport() bool {
	return w.Transport == "tcp" || w.Transport == "unix"
}

// PhaseConfig is the declarative form of fault.PhaseSchedule.
type PhaseConfig struct {
	Warmup int `json:"warmup"`
	Inject int `json:"inject"`
}

// FaultRule is the declarative form of fault.Rule.
type FaultRule struct {
	Op    string `json:"op"`
	Rank  int    `json:"rank"` // fault.AnyRank for "any"
	Class string `json:"class,omitempty"`
	// Nth and Count window the rule over the per-(op, rank) occurrence
	// sequence — a count with rank "any" fires that many times on EVERY
	// rank, not in total.
	Nth   int           `json:"nth,omitempty"`
	Count int           `json:"count,omitempty"` // fault.Every for "every"
	Delay time.Duration `json:"delay,omitempty"`
	Phase string        `json:"phase,omitempty"`
}

// Kill schedules a one-shot rank death at a batch boundary.
type Kill struct {
	Rank  int `json:"rank"`
	Batch int `json:"batch"`
}

// RetryConfig is the declarative form of fault.RetryPolicy.
type RetryConfig struct {
	MaxAttempts int           `json:"max_attempts"`
	BaseDelay   time.Duration `json:"base_delay,omitempty"`
	MaxDelay    time.Duration `json:"max_delay,omitempty"`
}

// SuperviseConfig bounds the shrink-and-resume supervisor.
type SuperviseConfig struct {
	MaxRestarts    int           `json:"max_restarts"`
	RestartBackoff time.Duration `json:"restart_backoff,omitempty"`
}

// Gate is one release assertion over an aggregated metric: the scenario
// breaches when the metric's robust aggregate falls below Min or above
// Max. Duration-valued metrics are in nanoseconds.
type Gate struct {
	Metric string   `json:"metric"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// Outcome names for Config.Expect and RunMetrics.Outcome.
const (
	OutcomeSuccess       = "success"
	OutcomeRestartBudget = "restart-budget"
	OutcomeWorldTooSmall = "world-too-small"
	OutcomeRankLost      = "rank-lost"
	OutcomeError         = "error"
)

// Metrics gates may reference, with their aggregation semantics. Values
// are medians over the scenario's runs after IQR outlier drop; *_ratio
// metrics are ratios of the two arms' medians. Duration metrics are in
// nanoseconds (write gate bounds as durations: "250ms").
var metricCatalog = map[string]string{
	"batches_per_sec":             "injected-arm throughput (executed batches per second)",
	"baseline_batches_per_sec":    "fault-free-arm throughput",
	"throughput_ratio":            "injected ÷ baseline throughput medians",
	"p50_batch_latency":           "injected-arm median per-batch wall time (ns)",
	"p95_batch_latency":           "injected-arm p95 per-batch wall time (ns)",
	"p95_reduce_latency":          "injected-arm p95 reduce-chunk latency (ns)",
	"recovery_time":               "worst kill→first-post-restart-batch interval (ns)",
	"retries":                     "total retry re-attempts across ranks",
	"backoff_total":               "total backoff sleep (ns)",
	"faults_injected":             "faults (errors and delays) the schedule fired",
	"restarts":                    "supervised world relaunches",
	"lost_ranks":                  "ranks declared dead across attempts",
	"overhead_ratio":              "telemetry-on ÷ telemetry-off fault-free wall-time medians",
	"wall_time":                   "injected-arm wall time (ns)",
	"critical_path_comm_fraction": "injected-arm share of the critical path spent in communication (reduce + mpi transfers), 0..1",
	"critical_path_wait_fraction": "injected-arm share of the critical path spent idle (credit waits, blocked peers), 0..1",
	"reconnects":                  "socket-transport connection re-establishments (both link ends count)",
	"retransmits":                 "socket-transport frames re-sent through replay after a sever, drop or corruption",
	"crc_errors":                  "socket-transport frames rejected by the CRC check",
}

// MetricHelp returns the catalog line for a metric name.
func MetricHelp(name string) string { return metricCatalog[name] }

// MetricNames returns the gateable metric names, sorted.
func MetricNames() []string {
	out := make([]string, 0, len(metricCatalog))
	for n := range metricCatalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load reads and validates one scenario file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// LoadDir loads every *.yaml / *.yml under dir, sorted by filename.
func LoadDir(dir string) ([]*Config, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cfgs []*Config
	seen := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".yaml" && ext != ".yml" {
			continue
		}
		cfg, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[cfg.Name]; dup {
			return nil, fmt.Errorf("%s: scenario name %q already used by %s", cfg.Path, cfg.Name, prev)
		}
		seen[cfg.Name] = cfg.Path
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("scenario: no *.yaml scenarios under %s", dir)
	}
	return cfgs, nil
}

// Parse validates data as one scenario. Every error carries path:line.
func Parse(path string, data []byte) (*Config, error) {
	root, err := parseYAML(path, data)
	if err != nil {
		return nil, err
	}
	d := &dec{path: path}
	cfg := &Config{Path: path, Seed: 1, Runs: 3, Expect: OutcomeSuccess}
	d.allowKeys(root, "scenario",
		"name", "description", "seed", "runs", "world", "phases",
		"faults", "kills", "retry", "supervise", "deadline", "expect", "gates")

	cfg.Name = d.reqString(root, "name")
	if d.err == nil && !validName(cfg.Name) {
		d.fail(root.keyLn["name"], "name", "want lowercase [a-z0-9-]+, got %q", cfg.Name)
	}
	cfg.Description = d.optString(root, "description", "")
	cfg.Seed = d.optInt64(root, "seed", cfg.Seed)
	cfg.Runs = d.optInt(root, "runs", cfg.Runs)
	if d.err == nil && cfg.Runs < 1 {
		d.fail(root.keyLn["runs"], "runs", "want at least 1, got %d", cfg.Runs)
	}

	d.decodeWorld(root, cfg)
	d.decodePhases(root, cfg)
	d.decodeFaults(root, cfg)
	d.decodeKills(root, cfg)
	d.decodeRetry(root, cfg)
	d.decodeSupervise(root, cfg)
	cfg.Deadline = d.optDuration(root, "deadline", 0)
	if d.err == nil && cfg.Deadline < 0 {
		d.fail(root.keyLn["deadline"], "deadline", "must not be negative")
	}
	cfg.Expect = d.optString(root, "expect", cfg.Expect)
	if d.err == nil {
		switch cfg.Expect {
		case OutcomeSuccess, OutcomeRestartBudget, OutcomeWorldTooSmall, OutcomeRankLost:
		default:
			d.fail(root.keyLn["expect"], "expect", "unknown outcome %q (success, restart-budget, world-too-small, rank-lost)", cfg.Expect)
		}
	}
	d.decodeGates(root, cfg)
	if d.err != nil {
		return nil, d.err
	}
	if err := crossValidate(path, root, cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// crossValidate checks constraints that span fields.
func crossValidate(path string, root *node, cfg *Config) error {
	w := cfg.World
	if w.Groups*w.Ranks < 1 {
		return fmt.Errorf("%s: world needs at least one rank", path)
	}
	if cfg.Phases.Warmup >= w.Batches {
		return fmt.Errorf("%s:%d: phases.warmup: %d warmup batches consume the whole run (batches: %d)",
			path, root.keyLn["phases"], cfg.Phases.Warmup, w.Batches)
	}
	for _, k := range cfg.Kills {
		if k.Batch >= w.Batches {
			return fmt.Errorf("%s:%d: kills: batch %d out of range (world has %d batches)",
				path, root.keyLn["kills"], k.Batch, w.Batches)
		}
		if k.Rank >= w.Groups*w.Ranks {
			return fmt.Errorf("%s:%d: kills: rank %d out of range (world has %d ranks)",
				path, root.keyLn["kills"], k.Rank, w.Groups*w.Ranks)
		}
	}
	for _, f := range cfg.Faults {
		if f.Rank != fault.AnyRank && f.Rank >= w.Groups*w.Ranks {
			return fmt.Errorf("%s:%d: faults: rank %d out of range (world has %d ranks)",
				path, root.keyLn["faults"], f.Rank, w.Groups*w.Ranks)
		}
		if isWireOp(f.Op) && !w.SocketTransport() {
			return fmt.Errorf("%s:%d: faults: op %q needs world.transport tcp or unix (a channel world has no wire)",
				path, root.keyLn["faults"], f.Op)
		}
	}
	if len(cfg.Gates) == 0 {
		return fmt.Errorf("%s: scenario declares no gates (nothing to assert)", path)
	}
	return nil
}

// isWireOp reports whether op acts on the socket wire below the frame
// codec (meaningful only when the world runs over tcp or unix).
func isWireOp(op string) bool {
	switch op {
	case fault.OpFrameDrop, fault.OpFrameCorrupt, fault.OpFrameDup,
		fault.OpFrameDelay, fault.OpSever:
		return true
	}
	return false
}

// Injector compiles the scenario's fault schedule for one run. Runs are
// decorrelated by salting the seed with the run index; rules and kills are
// identical across runs, so occurrence-counted faults stay deterministic.
func (c *Config) Injector(run int) *fault.Injector {
	rules := make([]fault.Rule, 0, len(c.Faults))
	for _, f := range c.Faults {
		r := fault.Rule{Op: f.Op, Rank: f.Rank, Nth: f.Nth, Count: f.Count,
			Delay: f.Delay, Phase: f.Phase}
		if f.Class == "permanent" {
			r.Class = fault.Permanent
		}
		rules = append(rules, r)
	}
	in := fault.NewInjector(c.Seed+int64(run), rules...)
	for _, k := range c.Kills {
		in.ScheduleKill(k.Rank, k.Batch)
	}
	in.SetPhaseSchedule(fault.PhaseSchedule{
		WarmupBatches: c.Phases.Warmup,
		InjectBatches: c.Phases.Inject,
	})
	return in
}

// RetryPolicy compiles the scenario's retry section (nil when absent).
func (c *Config) RetryPolicy() *fault.RetryPolicy {
	if c.Retry == nil {
		return nil
	}
	return &fault.RetryPolicy{
		MaxAttempts: c.Retry.MaxAttempts,
		BaseDelay:   c.Retry.BaseDelay,
		MaxDelay:    c.Retry.MaxDelay,
		Seed:        c.Seed,
	}
}

// Supervised reports whether the scenario runs under core.Supervise.
func (c *Config) Supervised() bool {
	return c.Supervise != nil || len(c.Kills) > 0
}

// dec is the schema decoder: first error wins, every error carries
// path:line: field.
type dec struct {
	path string
	err  error
}

func (d *dec) fail(line int, field, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s:%d: %s: %s", d.path, line, field, fmt.Sprintf(format, args...))
	}
}

// allowKeys rejects keys outside the schema, naming the closest context.
func (d *dec) allowKeys(n *node, field string, allowed ...string) {
	if d.err != nil || n == nil || n.kind != mapNode {
		return
	}
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	for _, k := range n.keys {
		if !ok[k] {
			d.fail(n.keyLn[k], field, "unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
			return
		}
	}
}

func (d *dec) scalarOf(n *node, key, field string) (*node, int, bool) {
	if d.err != nil {
		return nil, 0, false
	}
	c, ok := n.child(key)
	if !ok {
		return nil, 0, false
	}
	if c.kind != scalarNode {
		d.fail(n.keyLn[key], field, "want a scalar, got a %s", c.kind)
		return nil, 0, false
	}
	return c, n.keyLn[key], true
}

func (d *dec) reqString(n *node, key string) string {
	if d.err != nil {
		return ""
	}
	if _, ok := n.child(key); !ok {
		d.fail(n.line, key, "required key missing")
		return ""
	}
	return d.optString(n, key, "")
}

func (d *dec) optString(n *node, key, def string) string {
	c, _, ok := d.scalarOf(n, key, key)
	if !ok {
		return def
	}
	return c.scalar
}

func (d *dec) optInt(n *node, key string, def int) int {
	return int(d.optInt64(n, key, int64(def)))
}

func (d *dec) optInt64(n *node, key string, def int64) int64 {
	c, line, ok := d.scalarOf(n, key, key)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(c.scalar, 10, 64)
	if err != nil {
		d.fail(line, key, "want an integer, got %q", c.scalar)
		return def
	}
	return v
}

func (d *dec) optDuration(n *node, key string, def time.Duration) time.Duration {
	c, line, ok := d.scalarOf(n, key, key)
	if !ok {
		return def
	}
	v, err := time.ParseDuration(c.scalar)
	if err != nil {
		d.fail(line, key, "want a duration (e.g. 250ms), got %q", c.scalar)
		return def
	}
	return v
}

// bound parses a gate bound: a duration ("250ms" → ns) or a plain number.
func (d *dec) bound(c *node, line int, field string) float64 {
	if !c.quoted {
		if v, err := strconv.ParseFloat(c.scalar, 64); err == nil {
			return v
		}
		if v, err := time.ParseDuration(c.scalar); err == nil {
			return float64(v)
		}
	}
	d.fail(line, field, "want a number or duration, got %q", c.scalar)
	return 0
}

func (d *dec) decodeWorld(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	w, ok := root.child("world")
	if !ok {
		d.fail(root.line, "world", "required section missing")
		return
	}
	if w.kind != mapNode {
		d.fail(root.keyLn["world"], "world", "want a mapping, got a %s", w.kind)
		return
	}
	d.allowKeys(w, "world", "dataset", "div", "n", "groups", "ranks", "batches",
		"transport", "procs")
	cfg.World = WorldConfig{
		Dataset:   d.optString(w, "dataset", "tomo_00030"),
		Div:       d.optInt(w, "div", 16),
		N:         d.optInt(w, "n", 32),
		Groups:    d.optInt(w, "groups", 0),
		Ranks:     d.optInt(w, "ranks", 0),
		Batches:   d.optInt(w, "batches", 0),
		Transport: d.optString(w, "transport", "chan"),
		Procs:     d.optInt(w, "procs", 0),
	}
	if d.err != nil {
		return
	}
	switch cfg.World.Transport {
	case "chan", "tcp", "unix":
	default:
		d.fail(w.keyLn["transport"], "world.transport",
			"unknown transport %q (chan, tcp, unix)", cfg.World.Transport)
		return
	}
	if cfg.World.SocketTransport() {
		if cfg.World.Procs < 2 {
			line := w.keyLn["procs"]
			if line == 0 {
				line = w.keyLn["transport"]
			}
			d.fail(line, "world.procs", "a %s world needs at least 2 processes (hub + workers)", cfg.World.Transport)
			return
		}
	} else if cfg.World.Procs != 0 {
		d.fail(w.keyLn["procs"], "world.procs", "only meaningful with transport tcp or unix")
		return
	}
	for _, f := range []struct {
		key string
		v   int
	}{{"groups", cfg.World.Groups}, {"ranks", cfg.World.Ranks}, {"batches", cfg.World.Batches}} {
		if f.v <= 0 {
			line := w.keyLn[f.key]
			if line == 0 {
				line = root.keyLn["world"]
			}
			d.fail(line, "world."+f.key, "want a positive integer")
			return
		}
	}
	if cfg.World.Div <= 0 || cfg.World.N <= 0 {
		d.fail(root.keyLn["world"], "world", "div and n must be positive")
	}
}

func (d *dec) decodePhases(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	p, ok := root.child("phases")
	if !ok {
		return // no schedule: the whole run is one inject window
	}
	if p.kind != mapNode {
		d.fail(root.keyLn["phases"], "phases", "want a mapping, got a %s", p.kind)
		return
	}
	d.allowKeys(p, "phases", "warmup", "inject")
	cfg.Phases = PhaseConfig{
		Warmup: d.optInt(p, "warmup", 0),
		Inject: d.optInt(p, "inject", 0),
	}
	if d.err == nil && (cfg.Phases.Warmup < 0 || cfg.Phases.Inject < 0) {
		d.fail(root.keyLn["phases"], "phases", "warmup and inject must not be negative")
	}
}

func (d *dec) decodeFaults(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	f, ok := root.child("faults")
	if !ok {
		return
	}
	if f.kind != seqNode {
		d.fail(root.keyLn["faults"], "faults", "want a sequence of rules, got a %s", f.kind)
		return
	}
	for i, item := range f.items {
		field := fmt.Sprintf("faults[%d]", i)
		if item.kind != mapNode {
			d.fail(item.line, field, "want a mapping, got a %s", item.kind)
			return
		}
		d.allowKeys(item, field, "op", "rank", "class", "nth", "count", "delay", "phase")
		r := FaultRule{
			Op:    d.reqString(item, "op"),
			Rank:  fault.AnyRank,
			Class: d.optString(item, "class", "transient"),
			Nth:   d.optInt(item, "nth", 0),
			Delay: d.optDuration(item, "delay", 0),
			Phase: d.optString(item, "phase", ""),
		}
		if d.err != nil {
			return
		}
		switch r.Op {
		case fault.OpLoad, fault.OpStore, fault.OpSend, fault.OpRecv:
		case fault.OpFrameDrop, fault.OpFrameCorrupt, fault.OpFrameDup,
			fault.OpFrameDelay, fault.OpSever:
			// Wire-level ops act below the frame codec; only a socket world
			// has a wire for them to act on (checked in crossValidate, which
			// sees the world section whatever the key order).
		default:
			d.fail(item.keyLn["op"], field+".op",
				"unknown operation %q (load, store, send, recv, frame-drop, frame-corrupt, frame-dup, frame-delay, sever)", r.Op)
			return
		}
		switch r.Class {
		case "transient", "permanent":
		default:
			d.fail(item.keyLn["class"], field+".class", "unknown class %q (transient, permanent)", r.Class)
			return
		}
		switch r.Phase {
		case "", fault.PhaseWarmup, fault.PhaseInject, fault.PhaseRecovery:
		default:
			d.fail(item.keyLn["phase"], field+".phase", "unknown phase %q (warmup, inject, recovery)", r.Phase)
			return
		}
		if rankStr := d.optString(item, "rank", "any"); rankStr != "any" {
			v, err := strconv.Atoi(rankStr)
			if err != nil || v < 0 {
				d.fail(item.keyLn["rank"], field+".rank", "want \"any\" or a rank index, got %q", rankStr)
				return
			}
			r.Rank = v
		}
		if countStr := d.optString(item, "count", "1"); countStr == "every" {
			r.Count = fault.Every
		} else {
			v, err := strconv.Atoi(countStr)
			if err != nil || v < 1 {
				d.fail(item.keyLn["count"], field+".count", "want \"every\" or a positive count, got %q", countStr)
				return
			}
			r.Count = v
		}
		if d.err != nil {
			return
		}
		cfg.Faults = append(cfg.Faults, r)
	}
}

func (d *dec) decodeKills(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	k, ok := root.child("kills")
	if !ok {
		return
	}
	if k.kind != seqNode {
		d.fail(root.keyLn["kills"], "kills", "want a sequence, got a %s", k.kind)
		return
	}
	for i, item := range k.items {
		field := fmt.Sprintf("kills[%d]", i)
		if item.kind != mapNode {
			d.fail(item.line, field, "want a mapping with rank and batch, got a %s", item.kind)
			return
		}
		d.allowKeys(item, field, "rank", "batch")
		kill := Kill{
			Rank:  d.optInt(item, "rank", -1),
			Batch: d.optInt(item, "batch", -1),
		}
		if d.err != nil {
			return
		}
		if kill.Rank < 0 || kill.Batch < 0 {
			d.fail(item.line, field, "rank and batch are required and must not be negative")
			return
		}
		cfg.Kills = append(cfg.Kills, kill)
	}
}

func (d *dec) decodeRetry(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	r, ok := root.child("retry")
	if !ok {
		return
	}
	if r.kind != mapNode {
		d.fail(root.keyLn["retry"], "retry", "want a mapping, got a %s", r.kind)
		return
	}
	d.allowKeys(r, "retry", "max_attempts", "base_delay", "max_delay")
	cfg.Retry = &RetryConfig{
		MaxAttempts: d.optInt(r, "max_attempts", 0),
		BaseDelay:   d.optDuration(r, "base_delay", 0),
		MaxDelay:    d.optDuration(r, "max_delay", 0),
	}
}

func (d *dec) decodeSupervise(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	s, ok := root.child("supervise")
	if !ok {
		return
	}
	if s.kind != mapNode {
		d.fail(root.keyLn["supervise"], "supervise", "want a mapping, got a %s", s.kind)
		return
	}
	d.allowKeys(s, "supervise", "max_restarts", "restart_backoff")
	cfg.Supervise = &SuperviseConfig{
		MaxRestarts:    d.optInt(s, "max_restarts", 0),
		RestartBackoff: d.optDuration(s, "restart_backoff", 0),
	}
}

func (d *dec) decodeGates(root *node, cfg *Config) {
	if d.err != nil {
		return
	}
	g, ok := root.child("gates")
	if !ok {
		return // crossValidate rejects gateless scenarios with a clearer message
	}
	if g.kind != seqNode {
		d.fail(root.keyLn["gates"], "gates", "want a sequence, got a %s", g.kind)
		return
	}
	for i, item := range g.items {
		field := fmt.Sprintf("gates[%d]", i)
		if item.kind != mapNode {
			d.fail(item.line, field, "want a mapping, got a %s", item.kind)
			return
		}
		d.allowKeys(item, field, "metric", "min", "max")
		gate := Gate{Metric: d.reqString(item, "metric")}
		if d.err != nil {
			return
		}
		if _, known := metricCatalog[gate.Metric]; !known {
			d.fail(item.keyLn["metric"], field+".metric",
				"unknown metric %q (known: %s)", gate.Metric, strings.Join(MetricNames(), ", "))
			return
		}
		if c, line, ok := d.scalarOf(item, "min", field+".min"); ok {
			v := d.bound(c, line, field+".min")
			gate.Min = &v
		}
		if c, line, ok := d.scalarOf(item, "max", field+".max"); ok {
			v := d.bound(c, line, field+".max")
			gate.Max = &v
		}
		if d.err != nil {
			return
		}
		if gate.Min == nil && gate.Max == nil {
			d.fail(item.line, field, "gate needs min, max or both")
			return
		}
		cfg.Gates = append(cfg.Gates, gate)
	}
}
