package scenario

import (
	"strings"
	"testing"
)

// testWorld is the smallest interesting world: 2 groups × 2 ranks over 4
// batches of the div-16 synthetic twin.
const testWorld = `world:
  groups: 2
  ranks: 2
  batches: 4
`

func mustParse(t *testing.T, doc string) *Config {
	t.Helper()
	cfg, err := Parse("test.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func gate(t *testing.T, res *ScenarioResult, metric string) GateResult {
	t.Helper()
	for _, g := range res.Gates {
		if g.Metric == metric {
			return g
		}
	}
	t.Fatalf("no %q gate in %+v", metric, res.Gates)
	return GateResult{}
}

func TestExecuteFaultFreeBaseline(t *testing.T) {
	cfg := mustParse(t, `name: baseline
runs: 2
`+testWorld+`gates:
  - metric: faults_injected
    max: 0
  - metric: baseline_batches_per_sec
    min: 0.001
  - metric: throughput_ratio
    min: 0.05
`)
	res, err := Execute(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("fault-free scenario failed: %+v", res.Gates)
	}
	if len(res.Baseline) != 2 || len(res.Injected) != 2 || len(res.Dark) != 0 {
		t.Fatalf("arm sizes: base %d inj %d dark %d", len(res.Baseline), len(res.Injected), len(res.Dark))
	}
	for _, r := range append(res.Baseline, res.Injected...) {
		if r.Outcome != OutcomeSuccess || r.Batches == 0 {
			t.Fatalf("run = %+v", r)
		}
	}
	if res.Metrics["p95_batch_latency"] <= 0 || res.Metrics["wall_time"] <= 0 {
		t.Errorf("latency metrics missing: %+v", res.Metrics)
	}
}

func TestExecuteTransientFaultsAbsorbed(t *testing.T) {
	cfg := mustParse(t, `name: transient
runs: 2
`+testWorld+`faults:
  - op: load
    count: 3
retry:
  max_attempts: 6
  base_delay: 100us
  max_delay: 1ms
gates:
  - metric: faults_injected
    min: 12
    max: 12
  - metric: retries
    min: 12
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("transient scenario failed: %+v", res.Gates)
	}
	// Occurrence counters are per (op, rank): count 3 on 4 ranks fires
	// exactly 12 times per run, deterministically.
	for _, r := range res.Injected {
		if r.Faults != 12 || r.Retries < 12 {
			t.Fatalf("injected run = %+v", r)
		}
	}
	for _, r := range res.Baseline {
		if r.Faults != 0 || r.Retries != 0 {
			t.Fatalf("baseline run leaked faults: %+v", r)
		}
	}
}

func TestExecuteKillRecovery(t *testing.T) {
	cfg := mustParse(t, `name: kill
runs: 2
`+testWorld+`kills:
  - rank: 3
    batch: 1
supervise:
  max_restarts: 2
  restart_backoff: 1ms
gates:
  - metric: restarts
    min: 1
    max: 1
  - metric: lost_ranks
    min: 1
  - metric: recovery_time
    min: 1
    max: 10s
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("kill scenario failed: %+v", res.Gates)
	}
	if res.Metrics["recovery_time"] <= 0 {
		t.Errorf("recovery_time = %g, want > 0 after a restart", res.Metrics["recovery_time"])
	}
}

// TestExecuteTightenedGateFails is the SLO gate's own smoke test: take a
// passing scenario, tighten one bound beyond reach, and the verdict must
// flip with the breached gate named.
func TestExecuteTightenedGateFails(t *testing.T) {
	cfg := mustParse(t, `name: tight
runs: 2
`+testWorld+`gates:
  - metric: batches_per_sec
    min: 1e12
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("impossible gate passed")
	}
	g := gate(t, res, "batches_per_sec")
	if g.Pass || !strings.Contains(g.Detail, "below min") {
		t.Fatalf("gate = %+v", g)
	}
	if out := gate(t, res, "outcome"); !out.Pass {
		t.Fatalf("outcome gate should still pass: %+v", out)
	}
}

// A scenario that declares a non-success expectation must fail its
// outcome gate when the run in fact succeeds — degradation declarations
// are assertions in both directions.
func TestExecuteExpectMismatchFails(t *testing.T) {
	cfg := mustParse(t, `name: expect-mismatch
runs: 1
`+testWorld+`expect: restart-budget
gates:
  - metric: faults_injected
    max: 0
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("mismatched expectation passed")
	}
	out := gate(t, res, "outcome")
	if out.Pass || !strings.Contains(out.Detail, "want restart-budget") {
		t.Fatalf("outcome gate = %+v", out)
	}
}

func TestExecuteOverheadArm(t *testing.T) {
	cfg := mustParse(t, `name: overhead
runs: 2
`+testWorld+`gates:
  - metric: overhead_ratio
    max: 25
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dark) != 2 {
		t.Fatalf("dark arm has %d runs, want 2", len(res.Dark))
	}
	if res.Metrics["overhead_ratio"] <= 0 {
		t.Fatalf("overhead_ratio = %g", res.Metrics["overhead_ratio"])
	}
	for _, r := range res.Dark {
		if r.Batches != 0 {
			t.Fatalf("dark run harvested telemetry: %+v", r)
		}
	}
}

// TestExecuteSocketWorldRecovery replays a supervised scenario over a
// real loopback TCP fleet: three processes, a wire sever absorbed by the
// link's reconnect + replay, then a rank kill that every process's
// supervisor must resolve into the same one-restart shrink. This is the
// in-repo twin of scenarios/net-partition.yaml.
func TestExecuteSocketWorldRecovery(t *testing.T) {
	cfg := mustParse(t, `name: socket-recovery
runs: 1
world:
  groups: 2
  ranks: 2
  batches: 4
  transport: tcp
  procs: 3
faults:
  - op: sever
    rank: 1
    nth: 2
kills:
  - rank: 1
    batch: 1
supervise:
  max_restarts: 2
  restart_backoff: 1ms
gates:
  - metric: reconnects
    min: 1
  - metric: retransmits
    min: 1
  - metric: restarts
    min: 1
    max: 1
  - metric: lost_ranks
    min: 1
`)
	res, err := Execute(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("socket recovery scenario failed: %+v", res.Gates)
	}
	for _, r := range res.Baseline {
		if r.Outcome != OutcomeSuccess {
			t.Fatalf("baseline over sockets failed: %+v", r)
		}
	}
	for _, r := range res.Injected {
		if r.Reconnects < 1 || r.Restarts != 1 {
			t.Fatalf("injected run = %+v", r)
		}
	}
}

// TestExecuteUnixSocketWorld runs the fault-free control over unix
// domain sockets: the fleet path must provision (and clean up) the
// socket directory itself and reconstruct successfully.
func TestExecuteUnixSocketWorld(t *testing.T) {
	cfg := mustParse(t, `name: socket-unix
runs: 1
world:
  groups: 2
  ranks: 2
  batches: 4
  transport: unix
  procs: 3
gates:
  - metric: faults_injected
    max: 0
  - metric: restarts
    max: 0
`)
	res, err := Execute(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("unix socket scenario failed: %+v", res.Gates)
	}
	for _, r := range append(res.Baseline, res.Injected...) {
		if r.Outcome != OutcomeSuccess || r.Batches == 0 {
			t.Fatalf("run = %+v", r)
		}
	}
}

func TestRobustMedian(t *testing.T) {
	if m := RobustMedian(nil); m != 0 {
		t.Errorf("empty = %g", m)
	}
	if m := RobustMedian([]float64{3}); m != 3 {
		t.Errorf("single = %g", m)
	}
	// One wild outlier among stable samples is fenced out.
	if m := RobustMedian([]float64{10, 11, 10, 12, 11, 500}); m != 11 {
		t.Errorf("outlier-trimmed median = %g, want 11", m)
	}
	// With two samples nothing is dropped: plain median.
	if m := RobustMedian([]float64{10, 20}); m != 15 {
		t.Errorf("two-sample median = %g, want 15", m)
	}
}

func TestQuantileOf(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if q := quantileOf(s, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := quantileOf(s, 1); q != 4 {
		t.Errorf("q1 = %g", q)
	}
	if q := quantileOf(s, 0.5); q != 2.5 {
		t.Errorf("q0.5 = %g", q)
	}
}

func TestAnalysisRoundtripAndValidation(t *testing.T) {
	cfg := mustParse(t, `name: tight
runs: 1
`+testWorld+`gates:
  - metric: batches_per_sec
    min: 1e12
`)
	res, err := Execute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis([]ScenarioResult{*res}, "2026-01-01T00:00:00Z")
	if a.Pass {
		t.Fatal("analysis over a failing scenario passed")
	}
	data, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateAnalysisJSON(data)
	if err != nil {
		t.Fatalf("round-tripped artifact rejected: %v", err)
	}
	if back.Pass || len(back.Scenarios) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}

	md := a.Markdown()
	for _, want := range []string{"# SLO gate: FAIL", "tight", "batches_per_sec", "below min"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	// A hand-edited pass bit contradicting the gates is rejected.
	forged := strings.Replace(string(data), `"pass": false`, `"pass": true`, 1)
	if _, err := ValidateAnalysisJSON([]byte(forged)); err == nil {
		t.Fatal("forged pass bit accepted")
	}
	if _, err := ValidateAnalysisJSON([]byte(`{"schema":"nope","scenarios":[],"pass":true}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
