// YAML-subset parser for scenario files. The container ships no YAML
// dependency, and the scenario schema needs only a small, strict slice of
// the language — block mappings, block sequences, scalars, comments — so
// this parser implements exactly that slice and nothing else, trading
// YAML's generality for error messages that always carry the file and
// line number (the loader's contract: a malformed scenario must say where
// it is malformed). Unsupported constructs (flow syntax, anchors, tabs,
// multi-line scalars, nested sequences) are rejected with a line-numbered
// error rather than silently misparsed.
package scenario

import (
	"fmt"
	"strings"
)

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case seqNode:
		return "sequence"
	}
	return "unknown"
}

// node is one parsed YAML value. Every node remembers the line it started
// on; mapping nodes additionally remember each key's line, so decode
// errors point at the offending entry, not the whole block.
type node struct {
	line   int
	kind   nodeKind
	scalar string
	quoted bool // scalar came quoted: always a string, never a number
	keys   []string
	vals   map[string]*node
	keyLn  map[string]int
	items  []*node
}

func (n *node) child(key string) (*node, bool) {
	if n == nil || n.kind != mapNode {
		return nil, false
	}
	c, ok := n.vals[key]
	return c, ok
}

// srcLine is one significant source line: 1-based number, indentation in
// spaces, and the content with indentation and comments stripped.
type srcLine struct {
	num    int
	indent int
	text   string
}

type parser struct {
	path  string
	lines []srcLine
	pos   int
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.path, line, fmt.Sprintf(format, args...))
}

// parseYAML parses data into a root mapping node.
func parseYAML(path string, data []byte) (*node, error) {
	p := &parser{path: path}
	if err := p.scan(data); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty scenario file", path)
	}
	if first := p.lines[0]; first.indent != 0 {
		return nil, p.errf(first.num, "top-level block must start at column 0")
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, p.errf(p.lines[p.pos].num, "content after the top-level block (bad indentation?)")
	}
	if root.kind != mapNode {
		return nil, p.errf(root.line, "top level must be a mapping, got a %s", root.kind)
	}
	return root, nil
}

// scan splits data into significant lines, rejecting tabs in indentation
// and stripping comments and document markers. Line endings are
// normalised first — CRLF (Windows editors, git autocrlf) and lone CR
// both terminate a line — so reported line numbers always match what an
// editor shows, whatever wrote the file.
func (p *parser) scan(data []byte) error {
	text := strings.ReplaceAll(string(data), "\r\n", "\n")
	text = strings.ReplaceAll(text, "\r", "\n")
	for num, line := range strings.Split(text, "\n") {
		// Blank and comment-only lines are insignificant whatever their
		// indentation: a tab-indented full-line comment must not trip the
		// tab check below, which guards content alignment only.
		if t := strings.TrimLeft(line, " \t"); t == "" || t[0] == '#' {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return p.errf(num+1, "tab in indentation (use spaces)")
		}
		text := stripComment(line[indent:])
		if text == "" || text == "---" {
			continue
		}
		p.lines = append(p.lines, srcLine{num: num + 1, indent: indent, text: text})
	}
	return nil
}

// stripComment removes a trailing comment: a '#' at the start of the
// value or preceded by whitespace, outside single or double quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return strings.TrimRight(s[:i], " \t")
			}
		}
	}
	return strings.TrimRight(s, " \t")
}

// parseBlock parses the block starting at the current line, whose indent
// must be exactly indent: a sequence when the first line is a "- " item,
// a mapping otherwise.
func (p *parser) parseBlock(indent int) (*node, error) {
	if isSeqItem(p.lines[p.pos].text) {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *parser) parseMap(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, kind: mapNode,
		vals: map[string]*node{}, keyLn: map[string]int{}}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errf(ln.num, "unexpected indentation (expected column %d, got %d)", indent, ln.indent)
		}
		if isSeqItem(ln.text) {
			return nil, p.errf(ln.num, "sequence item inside a mapping block")
		}
		key, value, err := p.splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := n.vals[key]; dup {
			return nil, p.errf(ln.num, "duplicate key %q (first at line %d)", key, n.keyLn[key])
		}
		var child *node
		if value != "" {
			child = p.scalarFrom(ln.num, value)
			p.pos++
		} else {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, p.errf(ln.num, "key %q has no value (expected a scalar or an indented block)", key)
			}
			child, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		}
		n.keys = append(n.keys, key)
		n.vals[key] = child
		n.keyLn[key] = ln.num
	}
	return n, nil
}

func (p *parser) parseSeq(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, kind: seqNode}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errf(ln.num, "unexpected indentation in sequence (expected column %d, got %d)", indent, ln.indent)
		}
		if !isSeqItem(ln.text) {
			break
		}
		rest := strings.TrimLeft(strings.TrimPrefix(ln.text, "-"), " ")
		itemIndent := ln.indent + 2
		var child *node
		var err error
		switch {
		case rest == "":
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= ln.indent {
				return nil, p.errf(ln.num, "empty sequence item")
			}
			child, err = p.parseBlock(p.lines[p.pos].indent)
		case isSeqItem(rest):
			return nil, p.errf(ln.num, "nested sequences are not supported")
		case isInlineKey(rest):
			// "- key: value": the item is a mapping whose first entry sits
			// on the dash line; rewrite it at the item's indentation and
			// let parseMap pick up the continuation lines.
			p.lines[p.pos] = srcLine{num: ln.num, indent: itemIndent, text: rest}
			child, err = p.parseMap(itemIndent)
		default:
			child = p.scalarFrom(ln.num, rest)
			p.pos++
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, child)
	}
	return n, nil
}

// isInlineKey reports whether a sequence item's inline content is the
// first entry of a mapping ("key:" or "key: value" with a bare key).
func isInlineKey(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false
	}
	return validKey(s[:i])
}

// splitKey parses "key:" / "key: value" and validates the key.
func (p *parser) splitKey(ln srcLine) (key, value string, err error) {
	i := strings.IndexByte(ln.text, ':')
	if i <= 0 {
		return "", "", p.errf(ln.num, "expected \"key: value\", got %q", ln.text)
	}
	key = ln.text[:i]
	if !validKey(key) {
		return "", "", p.errf(ln.num, "invalid key %q (letters, digits, '-', '_' and '.' only)", key)
	}
	rest := ln.text[i+1:]
	if rest == "" {
		return key, "", nil
	}
	if rest[0] != ' ' {
		return "", "", p.errf(ln.num, "missing space after %q:", key)
	}
	return key, strings.TrimSpace(rest), nil
}

func validKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// scalarFrom builds a scalar node, unquoting matched single or double
// quotes (no escape processing — the schema has no need for it).
func (p *parser) scalarFrom(line int, s string) *node {
	quoted := false
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			s = s[1 : len(s)-1]
			quoted = true
		}
	}
	return &node{line: line, kind: scalarNode, scalar: s, quoted: quoted}
}
