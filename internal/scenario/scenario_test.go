package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distfdk/internal/fault"
)

const validDoc = `name: demo-scenario
description: exercise the schema
seed: 7
runs: 2
world:
  groups: 2
  ranks: 2
  batches: 4
phases:
  warmup: 1
  inject: 2
faults:
  - op: load
    rank: any
    class: transient
    count: 3
    phase: inject
  - op: recv
    rank: 1
    count: every
    delay: 2ms
kills:
  - rank: 3
    batch: 1
retry:
  max_attempts: 5
  base_delay: 1ms
  max_delay: 20ms
supervise:
  max_restarts: 2
  restart_backoff: 1ms
deadline: 5s
expect: success
gates:
  - metric: restarts
    min: 1
    max: 1
  - metric: recovery_time
    max: 5s
`

func TestParseValidScenario(t *testing.T) {
	cfg, err := Parse("demo.yaml", []byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "demo-scenario" || cfg.Seed != 7 || cfg.Runs != 2 {
		t.Errorf("header = %+v", cfg)
	}
	if cfg.World != (WorldConfig{Dataset: "tomo_00030", Div: 16, N: 32, Groups: 2, Ranks: 2, Batches: 4, Transport: "chan"}) {
		t.Errorf("world defaults not applied: %+v", cfg.World)
	}
	if cfg.World.SocketTransport() {
		t.Error("default world must not be a socket world")
	}
	if cfg.Phases != (PhaseConfig{Warmup: 1, Inject: 2}) {
		t.Errorf("phases = %+v", cfg.Phases)
	}
	if len(cfg.Faults) != 2 {
		t.Fatalf("faults = %+v", cfg.Faults)
	}
	f0, f1 := cfg.Faults[0], cfg.Faults[1]
	if f0.Rank != fault.AnyRank || f0.Count != 3 || f0.Phase != fault.PhaseInject {
		t.Errorf("faults[0] = %+v", f0)
	}
	if f1.Rank != 1 || f1.Count != fault.Every || f1.Delay != 2*time.Millisecond {
		t.Errorf("faults[1] = %+v", f1)
	}
	if cfg.Retry.MaxAttempts != 5 || cfg.Retry.BaseDelay != time.Millisecond {
		t.Errorf("retry = %+v", cfg.Retry)
	}
	if cfg.Supervise.MaxRestarts != 2 || cfg.Deadline != 5*time.Second {
		t.Errorf("supervise/deadline = %+v %v", cfg.Supervise, cfg.Deadline)
	}
	if len(cfg.Gates) != 2 || cfg.Gates[0].Metric != "restarts" {
		t.Fatalf("gates = %+v", cfg.Gates)
	}
	// Duration-typed gate bound lands in nanoseconds.
	if *cfg.Gates[1].Max != float64(5*time.Second) {
		t.Errorf("recovery_time max = %g", *cfg.Gates[1].Max)
	}
	if !cfg.Supervised() {
		t.Error("kill schedule must imply supervision")
	}

	in := cfg.Injector(0)
	if in.PendingKills() != 1 {
		t.Errorf("injector kills = %d", in.PendingKills())
	}
	if ps := in.PhaseSchedule(); ps == nil || ps.WarmupBatches != 1 {
		t.Errorf("injector phase schedule = %+v", ps)
	}
	rp := cfg.RetryPolicy()
	if rp == nil || rp.MaxAttempts != 5 || rp.Seed != 7 {
		t.Errorf("retry policy = %+v", rp)
	}
}

// edit returns validDoc with one line rewritten, to probe single-field
// validation without re-authoring the whole document.
func edit(t *testing.T, from, to string) []byte {
	t.Helper()
	if !strings.Contains(validDoc, from) {
		t.Fatalf("validDoc does not contain %q", from)
	}
	return []byte(strings.Replace(validDoc, from, to, 1))
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  []byte
		want string
	}{
		{"unknown top key", edit(t, "deadline: 5s", "deadlines: 5s"), `unknown key "deadlines"`},
		{"unknown world key", edit(t, "  batches: 4", "  slabs: 4"), `unknown key "slabs"`},
		{"bad name", edit(t, "name: demo-scenario", "name: Demo_Scenario"), "want lowercase"},
		{"zero runs", edit(t, "runs: 2", "runs: 0"), "runs: want at least 1"},
		{"bad int", edit(t, "seed: 7", "seed: seven"), "want an integer"},
		{"bad duration", edit(t, "deadline: 5s", "deadline: fast"), "want a duration"},
		{"bad op", edit(t, "op: recv", "op: fetch"), `unknown operation "fetch"`},
		{"bad class", edit(t, "class: transient", "class: flaky"), `unknown class "flaky"`},
		{"bad phase", edit(t, "phase: inject", "phase: chaos"), `unknown phase "chaos"`},
		{"bad rank", edit(t, "rank: any", "rank: -2"), `want "any" or a rank index`},
		{"bad count", edit(t, "count: every", "count: 0"), `want "every" or a positive count`},
		{"bad expect", edit(t, "expect: success", "expect: explodes"), "unknown outcome"},
		{"unknown metric", edit(t, "metric: restarts", "metric: vibes"), `unknown metric "vibes"`},
		{"bound gibberish", edit(t, "max: 5s", "max: loose"), "want a number or duration"},
		{"kill rank range", edit(t, "rank: 3\n    batch: 1", "rank: 9\n    batch: 1"), "rank 9 out of range"},
		{"kill batch range", edit(t, "batch: 1", "batch: 99"), "batch 99 out of range"},
		{"warmup swallows run", edit(t, "warmup: 1", "warmup: 4"), "consume the whole run"},
		{"missing world", []byte("name: x\ngates:\n  - metric: retries\n    min: 0\n"), "world: required section missing"},
		{"missing name", []byte("world:\n  groups: 1\n  ranks: 1\n  batches: 1\n"), "name: required key missing"},
		{"bad transport", edit(t, "  batches: 4", "  batches: 4\n  transport: carrier-pigeon"), `unknown transport "carrier-pigeon"`},
		{"socket without procs", edit(t, "  batches: 4", "  batches: 4\n  transport: tcp"), "at least 2 processes"},
		{"one-proc socket world", edit(t, "  batches: 4", "  batches: 4\n  transport: unix\n  procs: 1"), "at least 2 processes"},
		{"procs on channel world", edit(t, "  batches: 4", "  batches: 4\n  procs: 3"), "only meaningful with transport"},
		{"wire op on channel world", edit(t, "op: recv", "op: sever"), "needs world.transport tcp or unix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("demo.yaml", tc.doc)
			if err == nil {
				t.Fatal("parse accepted the malformed scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "demo.yaml:") {
				t.Fatalf("error %q does not lead with the file name", err)
			}
		})
	}
}

func TestUnknownKeyErrorCarriesLine(t *testing.T) {
	_, err := Parse("demo.yaml", edit(t, "deadline: 5s", "deadlines: 5s"))
	if err == nil {
		t.Fatal("accepted unknown key")
	}
	// "deadline: 5s" sits on a known line of validDoc; assert the error
	// points at it rather than line 1.
	wantLine := 1 + strings.Count(validDoc[:strings.Index(validDoc, "deadline: 5s")], "\n")
	prefix := "demo.yaml:" + itoa(wantLine) + ":"
	if !strings.HasPrefix(err.Error(), prefix) {
		t.Fatalf("error = %q, want prefix %q", err, prefix)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestParseSocketWorld pins the socket-world schema: transport + procs
// decode, and wire-level fault ops are accepted once the world has a
// wire for them to act on.
func TestParseSocketWorld(t *testing.T) {
	doc := `name: net
world:
  groups: 2
  ranks: 2
  batches: 4
  transport: tcp
  procs: 3
faults:
  - op: sever
    rank: 1
    nth: 2
  - op: frame-corrupt
    rank: 3
gates:
  - metric: reconnects
    min: 1
  - metric: retransmits
    min: 1
  - metric: crc_errors
    min: 1
`
	cfg, err := Parse("net.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.World.Transport != "tcp" || cfg.World.Procs != 3 || !cfg.World.SocketTransport() {
		t.Errorf("world = %+v", cfg.World)
	}
	if len(cfg.Faults) != 2 || cfg.Faults[0].Op != fault.OpSever || cfg.Faults[1].Op != fault.OpFrameCorrupt {
		t.Errorf("faults = %+v", cfg.Faults)
	}
	// The compiled injector carries the wire rules for nettrans.
	in := cfg.Injector(0)
	if in.Hit(fault.OpSever, 1) != nil {
		t.Error("sever nth 2 fired on the first occurrence")
	}
	if in.Hit(fault.OpSever, 1) == nil {
		t.Error("sever nth 2 did not fire on the second occurrence")
	}
}

func TestGatelessScenarioRejected(t *testing.T) {
	doc := "name: x\nworld:\n  groups: 1\n  ranks: 1\n  batches: 1\n"
	_, err := Parse("demo.yaml", []byte(doc))
	if err == nil || !strings.Contains(err.Error(), "declares no gates") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name string) string {
		return "name: " + name + "\nworld:\n  groups: 1\n  ranks: 1\n  batches: 2\ngates:\n  - metric: retries\n    max: 0\n"
	}
	write("b.yaml", mk("bee"))
	write("a.yaml", mk("ay"))
	write("notes.txt", "not yaml")
	cfgs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "ay" || cfgs[1].Name != "bee" {
		t.Fatalf("cfgs = %+v", cfgs)
	}

	write("c.yaml", mk("ay")) // duplicate scenario name
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Fatalf("duplicate name not rejected: %v", err)
	}

	if _, err := LoadDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.yaml scenarios") {
		t.Fatalf("empty dir not rejected: %v", err)
	}
}
