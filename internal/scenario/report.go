package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// AnalysisSchema versions the analysis.json layout for downstream
// consumers (CI validation, dashboards).
const AnalysisSchema = "distfdk-slo/1"

// Analysis is the slogate artifact: every scenario's robust metrics and
// gate verdicts, plus the overall pass bit that decides the exit code.
type Analysis struct {
	Schema    string           `json:"schema"`
	Timestamp string           `json:"timestamp,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Pass      bool             `json:"pass"`
}

// ScenarioResult aggregates one scenario's paired-arm replay.
type ScenarioResult struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Runs        int    `json:"runs"`
	Expect      string `json:"expect"`
	// Metrics holds the robust (IQR-trimmed median) aggregates keyed by
	// catalog name; durations are nanoseconds.
	Metrics map[string]float64 `json:"metrics"`
	// Baseline and Injected are the per-run harvests of the two arms;
	// Dark holds the telemetry-off runs backing overhead_ratio (absent
	// unless a gate asked for it).
	Baseline []RunMetrics `json:"baseline"`
	Injected []RunMetrics `json:"injected"`
	Dark     []RunMetrics `json:"dark,omitempty"`
	Gates    []GateResult `json:"gates"`
	Pass     bool         `json:"pass"`
	// Error is set when the scenario could not be replayed at all (the
	// world failed to build); such a scenario always fails.
	Error string `json:"error,omitempty"`
}

// GateResult is one evaluated assertion.
type GateResult struct {
	Metric string   `json:"metric"`
	Value  float64  `json:"value"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
	Pass   bool     `json:"pass"`
	Detail string   `json:"detail,omitempty"`
}

// NewAnalysis assembles the artifact and computes the overall verdict.
func NewAnalysis(results []ScenarioResult, timestamp string) *Analysis {
	a := &Analysis{Schema: AnalysisSchema, Timestamp: timestamp, Pass: true}
	a.Scenarios = append(a.Scenarios, results...)
	for _, r := range a.Scenarios {
		if !r.Pass {
			a.Pass = false
		}
	}
	return a
}

// MarshalJSON output of the analysis, indented for artifact diffing.
func (a *Analysis) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// Markdown renders the human-readable gate report.
func (a *Analysis) Markdown() string {
	var b strings.Builder
	verdict := "PASS"
	if !a.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "# SLO gate: %s\n\n", verdict)
	if a.Timestamp != "" {
		fmt.Fprintf(&b, "_%s · schema %s_\n\n", a.Timestamp, a.Schema)
	}
	for _, s := range a.Scenarios {
		mark := "✅"
		if !s.Pass {
			mark = "❌"
		}
		fmt.Fprintf(&b, "## %s %s\n\n", mark, s.Name)
		if s.Description != "" {
			fmt.Fprintf(&b, "%s\n\n", s.Description)
		}
		if s.Error != "" {
			fmt.Fprintf(&b, "scenario failed to run: %s\n\n", s.Error)
			continue
		}
		fmt.Fprintf(&b, "seed %d · %d runs per arm · expect `%s`\n\n", s.Seed, s.Runs, s.Expect)
		b.WriteString("| gate | value | bound | verdict |\n|---|---|---|---|\n")
		for _, g := range s.Gates {
			gm := "pass"
			if !g.Pass {
				gm = "**FAIL** — " + g.Detail
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				g.Metric, fmtMetric(g.Metric, g.Value), fmtBounds(g), gm)
		}
		b.WriteString("\n")
		if keys := metricKeys(s.Metrics); len(keys) > 0 {
			b.WriteString("<details><summary>all metrics</summary>\n\n")
			b.WriteString("| metric | value |\n|---|---|\n")
			for _, k := range keys {
				fmt.Fprintf(&b, "| %s | %s |\n", k, fmtMetric(k, s.Metrics[k]))
			}
			b.WriteString("\n</details>\n\n")
		}
	}
	return b.String()
}

func metricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// durationMetric reports whether a metric's unit is nanoseconds.
func durationMetric(name string) bool {
	switch name {
	case "p50_batch_latency", "p95_batch_latency", "p95_reduce_latency",
		"recovery_time", "backoff_total", "wall_time":
		return true
	}
	return false
}

func fmtMetric(name string, v float64) string {
	if name == "outcome" {
		return "—"
	}
	if durationMetric(name) {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.4g", v)
}

func fmtBounds(g GateResult) string {
	if g.Metric == "outcome" {
		return g.Detail
	}
	f := func(p *float64) string {
		if p == nil {
			return "·"
		}
		return fmtMetric(g.Metric, *p)
	}
	return fmt.Sprintf("[%s, %s]", f(g.Min), f(g.Max))
}

// ValidateAnalysisJSON checks an analysis artifact: schema tag, at least
// one scenario, gate verdicts consistent with the per-scenario and
// overall pass bits. CI runs this against the uploaded artifact so a
// silently-truncated or hand-edited file cannot masquerade as a verdict.
func ValidateAnalysisJSON(data []byte) (*Analysis, error) {
	var a Analysis
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if a.Schema != AnalysisSchema {
		return nil, fmt.Errorf("analysis: schema %q, want %q", a.Schema, AnalysisSchema)
	}
	if len(a.Scenarios) == 0 {
		return nil, fmt.Errorf("analysis: no scenarios")
	}
	overall := true
	for i, s := range a.Scenarios {
		if s.Name == "" {
			return nil, fmt.Errorf("analysis: scenario %d has no name", i)
		}
		if s.Error == "" && len(s.Gates) == 0 {
			return nil, fmt.Errorf("analysis: scenario %q has no gate verdicts", s.Name)
		}
		pass := s.Error == ""
		for _, g := range s.Gates {
			if g.Metric == "" {
				return nil, fmt.Errorf("analysis: scenario %q has an unnamed gate", s.Name)
			}
			pass = pass && g.Pass
		}
		if pass != s.Pass {
			return nil, fmt.Errorf("analysis: scenario %q pass bit %v contradicts its gates", s.Name, s.Pass)
		}
		overall = overall && pass
	}
	if overall != a.Pass {
		return nil, fmt.Errorf("analysis: overall pass bit %v contradicts the scenarios", a.Pass)
	}
	return &a, nil
}
