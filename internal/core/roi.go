package core

import (
	"fmt"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

// ZWindowOptions configures a region-of-interest reconstruction of the
// slice window [Z0, Z0+NZ) of the full volume, without reconstructing the
// rest. Because the decomposition already reconstructs arbitrary Z slabs
// from their ComputeAB detector-row ranges, an ROI costs exactly its share
// of the full problem — the "use fewer resources for a preview" workflow
// the paper's discussion (§6.3) motivates for parameter tuning.
type ZWindowOptions struct {
	Sys    *geometry.System
	Source projection.Source
	Device *device.Device
	Window filter.Window
	// Z0 and NZ select the slice window in global volume coordinates.
	Z0, NZ int
	// SlabSlices bounds the streaming slab height (0 picks NZ/8,
	// minimum 1).
	SlabSlices int
	// Workers bounds the filtering parallelism.
	Workers int
}

// ReconstructZWindow reconstructs only the requested slice window. The
// result is a slab positioned at Z0 whose voxels are identical to the same
// window of a full reconstruction.
func ReconstructZWindow(opts ZWindowOptions) (*volume.Volume, *ReconReport, error) {
	sys := opts.Sys
	if sys == nil || opts.Source == nil || opts.Device == nil {
		return nil, nil, fmt.Errorf("core: Sys, Source and Device are required")
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Z0 < 0 || opts.NZ <= 0 || opts.Z0+opts.NZ > sys.NZ {
		return nil, nil, fmt.Errorf("core: Z window [%d,%d) outside [0,%d)", opts.Z0, opts.Z0+opts.NZ, sys.NZ)
	}
	nb := opts.SlabSlices
	if nb <= 0 {
		nb = max(opts.NZ/DefaultBatchCount, 1)
	}
	fdk, err := NewFilter(sys, opts.Window)
	if err != nil {
		return nil, nil, err
	}
	parker, err := NewParker(sys)
	if err != nil {
		return nil, nil, err
	}
	mats := KernelMatrices(sys, 0, sys.NP)

	// Ring depth: the widest slab row range in the window.
	depth := 0
	for z := opts.Z0; z < opts.Z0+opts.NZ; z += nb {
		end := min(z+nb, opts.Z0+opts.NZ)
		if l := sys.ComputeAB(z, end).Len(); l > depth {
			depth = l
		}
	}
	ring, err := device.NewProjRing(opts.Device, sys.NU, sys.NP, depth)
	if err != nil {
		return nil, nil, err
	}
	defer ring.Close()

	out, err := volume.NewSlab(sys.NX, sys.NY, opts.NZ, opts.Z0)
	if err != nil {
		return nil, nil, err
	}
	before := opts.Device.Snapshot()
	rep := &ReconReport{}
	prev := geometry.RowRange{}
	for z := opts.Z0; z < opts.Z0+opts.NZ; z += nb {
		end := min(z+nb, opts.Z0+opts.NZ)
		rows := sys.ComputeAB(z, end)
		diff := geometry.DifferentialRows(prev, rows)
		if !prev.IsEmpty() && rows.Lo >= prev.Hi {
			ring.Reset()
		} else {
			ring.Release(rows.Lo)
		}
		if !diff.IsEmpty() {
			st, err := opts.Source.LoadRows(diff, 0, sys.NP)
			if err != nil {
				return nil, nil, err
			}
			if err := applyParker(parker, st); err != nil {
				return nil, nil, err
			}
			count := st.NV * st.NP
			if err := fdk.FilterRows(st.Data, count, func(i int) int { return st.V0 + i/st.NP }, opts.Workers); err != nil {
				return nil, nil, err
			}
			if err := ring.LoadRows(st, st.Rows()); err != nil {
				return nil, nil, err
			}
		}
		prev = rows
		slab, err := volume.NewSlab(sys.NX, sys.NY, end-z, z)
		if err != nil {
			return nil, nil, err
		}
		if err := backproject.Streaming(opts.Device, ring, mats, slab, rows); err != nil {
			return nil, nil, err
		}
		opts.Device.RecordD2H(slab.Bytes())
		if err := out.CopySlabFrom(slab); err != nil {
			return nil, nil, err
		}
		rep.Slabs++
	}
	rep.Ledger = opts.Device.Snapshot().Sub(before)
	return out, rep, nil
}
