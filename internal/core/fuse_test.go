package core

import (
	"testing"

	"distfdk/internal/device"
	"distfdk/internal/projection"
)

// Every fusion mode and driver shape must produce the same volume to the
// last bit: FilterRowInto's rounding matches ApplyRow-then-FilterRow
// exactly, and fusion only moves where the filtered row is written, never
// what is written.
func TestFusionBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}

	run := func(name string, mutate func(*ReconOptions)) []float32 {
		t.Helper()
		sink, err := NewVolumeSink(sys)
		if err != nil {
			t.Fatal(err)
		}
		opts := ReconOptions{
			Plan: p, Source: src,
			Device: device.New(name, 0, 2),
			Sink:   sink,
		}
		mutate(&opts)
		if _, err := ReconstructSingle(opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return sink.V.Data
	}

	ref := run("unfused", func(o *ReconOptions) { o.Fusion = FusionOff })
	cases := map[string]func(*ReconOptions){
		// Pipelined non-elastic: FusionAuto stays unfused, FusionOn fuses
		// inside the back-project stage.
		"auto-pipelined":  func(o *ReconOptions) {},
		"on-pipelined":    func(o *ReconOptions) { o.Fusion = FusionOn },
		"auto-serial":     func(o *ReconOptions) { o.DisablePipeline = true },
		"off-serial":      func(o *ReconOptions) { o.DisablePipeline = true; o.Fusion = FusionOff },
		"auto-elastic":    func(o *ReconOptions) { o.BPWorkers = 2 },
		"off-elastic":     func(o *ReconOptions) { o.BPWorkers = 2; o.Fusion = FusionOff },
		"fused-projmajor": func(o *ReconOptions) { o.Fusion = FusionOn; o.RingLayout = device.LayoutProjMajor },
	}
	for name, mutate := range cases {
		got := run(name, mutate)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: voxel %d: %g != unfused %g", name, i, got[i], ref[i])
			}
		}
	}
}
