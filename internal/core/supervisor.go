package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"distfdk/internal/fault"
	"distfdk/internal/mpi"
	"distfdk/internal/telemetry"
)

// This file is the ULFM-style recovery driver of the framework: where
// RunDistributed gives up when a rank dies — deterministically, with a
// typed error, but terminally — Supervise shrinks the world and carries
// on. The discipline mirrors what MPI's User-Level Failure Mitigation
// brings to iFDK-class reconstructions: detect the failure (world
// teardown + RankLostError attribution), revoke the broken communicator
// (the attempt's goroutine world simply exits), shrink (re-plan over the
// survivors), and resume from the checkpoint journal. Because the journal
// keys slabs by their output identity z0 and the shrink rule refuses any
// re-plan that changes the slab layout or the per-batch reduction
// grouping, the recovered volume is bit-identical to a fault-free run.

// Supervisor defaults: a handful of restarts with sub-second backoff. The
// backoff exists to let an external condition (a flaky filesystem, a
// saturated host) clear, not to paper over deterministic bugs — hence the
// small budget.
const (
	DefaultMaxRestarts       = 3
	DefaultRestartBackoff    = 250 * time.Millisecond
	DefaultRestartBackoffCap = 5 * time.Second
)

// ErrWorldTooSmall is the sentinel matched (via errors.Is) when no
// surviving-rank count admits a layout-preserving re-plan.
var ErrWorldTooSmall = errors.New("core: surviving ranks cannot preserve the plan's slab layout")

// ErrRestartBudget is the sentinel matched (via errors.Is) when the
// supervisor gives up because the restart budget is spent.
var ErrRestartBudget = errors.New("core: restart budget exhausted")

// ShrinkError reports that a shrunk world cannot host the plan. The only
// legal shrinks keep Nr (the per-batch reduction grouping, and with it
// the float32 summation order) and the slab layout intact; fewer
// survivors than one full group leaves nothing to shrink to.
type ShrinkError struct {
	Survivors      int
	NRanksPerGroup int
	Fingerprint    string
}

func (e *ShrinkError) Error() string {
	return fmt.Sprintf("core: no layout-preserving plan for %d survivors (need a multiple of Nr=%d ranks matching %s)",
		e.Survivors, e.NRanksPerGroup, e.Fingerprint)
}

// Is lets errors.Is(err, ErrWorldTooSmall) match.
func (e *ShrinkError) Is(target error) bool { return target == ErrWorldTooSmall }

// RestartBudgetError wraps the last attempt's failure when the supervisor
// runs out of restarts.
type RestartBudgetError struct {
	Restarts int
	Err      error // the attempt failure that exceeded the budget
}

func (e *RestartBudgetError) Error() string {
	return fmt.Sprintf("core: giving up after %d restarts: %v", e.Restarts, e.Err)
}

func (e *RestartBudgetError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrRestartBudget) match.
func (e *RestartBudgetError) Is(target error) bool { return target == ErrRestartBudget }

// ShrinkPlan re-plans p for a world of `survivors` ranks under the two
// rules that keep recovery bit-identical:
//
//  1. Nr is pinned. Each batch's slab is the sum of Nr partial
//     back-projections, accumulated pairwise up a binomial tree in a fixed
//     order; changing Nr regroups the float32 summation and changes the
//     rounding. Shrinks therefore remove whole groups, never group
//     members.
//  2. The slab layout is pinned. The candidate (Ng', Nc') must cut the
//     volume into exactly the original (z0, nz) slabs — checked via
//     Fingerprint — so journal records keep naming the same bytes and
//     each executed batch equals its fault-free counterpart.
//
// The largest qualifying Ng' ≤ survivors/Nr wins (use the most survivors
// possible). survivors ≥ p.Ranks() returns p unchanged; no qualifying
// candidate returns a *ShrinkError (ErrWorldTooSmall).
func ShrinkPlan(p *Plan, survivors int) (*Plan, error) {
	if survivors >= p.Ranks() {
		return p, nil
	}
	nr := p.NRanksPerGroup
	want := p.Fingerprint()
	for ng := survivors / nr; ng >= 1; ng-- {
		// Keep the original batch height: groups that cover more slices
		// run more batches of the same Nb, preserving the slab grid.
		spg := ceilDiv(p.Sys.NZ, ng)
		nc := ceilDiv(spg, p.slicesPerBatch)
		cand, err := NewPlan(p.Sys, ng, nr, nc)
		if err != nil {
			continue
		}
		if cand.Fingerprint() == want {
			return cand, nil
		}
	}
	return nil, &ShrinkError{Survivors: survivors, NRanksPerGroup: nr, Fingerprint: want}
}

// SuperviseOptions configures a supervised reconstruction.
type SuperviseOptions struct {
	// Cluster is the run configuration of the first attempt; later
	// attempts reuse it with Plan replaced by the shrunk re-plan. Set
	// Cluster.CollectiveDeadline so an un-attributable stall still
	// surfaces as ErrRankLost instead of hanging the supervisor.
	Cluster ClusterOptions
	// OpenCheckpoint, when set, opens the checkpoint journal for a plan
	// fingerprint — called once per attempt, closed (if the log is an
	// io.Closer) when the attempt ends. Wire it to storage.OpenJournal:
	//
	//	OpenCheckpoint: func(fp string) (core.CheckpointLog, error) {
	//		return storage.OpenJournal(journalPath, fp)
	//	}
	//
	// The indirection keeps core free of I/O imports while letting the
	// supervisor reopen the journal after every world rebuild. Mutually
	// exclusive with Cluster.Checkpoint, which (when set instead) is
	// reused across attempts without reopening — fine for in-memory logs.
	// With neither set, attempts restart from batch zero and recovery is
	// correct but does all the work again.
	OpenCheckpoint func(fingerprint string) (CheckpointLog, error)
	// MaxRestarts bounds how many times the world is relaunched after a
	// recoverable failure; 0 means DefaultMaxRestarts, negative means no
	// restarts (a single supervised attempt).
	MaxRestarts int
	// RestartBackoff is the delay before the first relaunch, doubled per
	// restart up to MaxRestartBackoff. Zeros mean the defaults.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration
	// Follower marks this supervisor as a non-coordinator process of a
	// multi-process world (Cluster.Launch set). Followers make the same
	// attempt/shrink decisions — the transport's verdict protocol hands
	// every process identical loss attributions — but skip the shared-
	// registry supervise telemetry (counters, gauges, attempt spans), so
	// a fleet sharing one registry records each restart exactly once, by
	// the coordinator.
	Follower bool
}

// SuperviseAttempt records one world launch under Supervise.
type SuperviseAttempt struct {
	// World is the rank count the attempt ran with, Plan its layout.
	World int
	Plan  string
	// Elapsed is the attempt's wall-clock time.
	Elapsed time.Duration
	// Err is nil for the final successful attempt. Lost names the world
	// ranks (in the attempt's own numbering) declared dead, when the
	// failure could be attributed.
	Err  error
	Lost []int
}

// SuperviseReport aggregates a supervised run: every attempt, the final
// attempt's ClusterReport, and the recovery totals.
type SuperviseReport struct {
	// Final is the last attempt's report (partial if that attempt
	// failed); Plan is the plan it ran with. Final.Restarts and
	// Final.LostRanks are filled in from this report.
	Final *ClusterReport
	Plan  *Plan
	// Attempts lists every world launch in order.
	Attempts []SuperviseAttempt
	// Restarts counts relaunches (len(Attempts)-1). Lost accumulates the
	// attributed dead ranks across attempts, each in the numbering of the
	// attempt that lost it; TotalLost additionally counts losses that
	// could not be attributed to a specific rank.
	Restarts  int
	Lost      []int
	TotalLost int
}

// String renders the per-attempt recovery story.
func (r *SuperviseReport) String() string {
	s := fmt.Sprintf("supervise: %d attempts, %d restarts, %d ranks lost\n",
		len(r.Attempts), r.Restarts, r.TotalLost)
	for i, a := range r.Attempts {
		if a.Err == nil {
			s += fmt.Sprintf("  attempt %d: %d ranks %s ok in %v\n",
				i, a.World, a.Plan, a.Elapsed.Round(time.Millisecond))
			continue
		}
		s += fmt.Sprintf("  attempt %d: %d ranks %s failed after %v (lost %v): %v\n",
			i, a.World, a.Plan, a.Elapsed.Round(time.Millisecond), a.Lost, a.Err)
	}
	return s
}

// attemptLostRanks unions every loss attribution in err: ranks named by
// RankLostError teardowns and ranks killed by scheduled OpKill faults.
// The latter matters for worlds where the dead rank has no peer blocked
// on it (Nr=1: no group collective to observe the death) — the kill error
// itself is then the only witness.
func attemptLostRanks(err error) []int {
	set := map[int]struct{}{}
	for _, r := range mpi.LostRanks(err) {
		set[r] = struct{}{}
	}
	walkErrTree(err, func(e error) {
		if fe, ok := e.(*fault.Error); ok && fe.Op == fault.OpKill {
			set[fe.Rank] = struct{}{}
		}
	})
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	// Insertion order is map order; sort for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// walkErrTree visits every node of err's tree, following both single and
// joined (Unwrap() []error) wrapping.
func walkErrTree(err error, visit func(error)) {
	if err == nil {
		return
	}
	visit(err)
	switch u := err.(type) {
	case interface{ Unwrap() []error }:
		for _, child := range u.Unwrap() {
			walkErrTree(child, visit)
		}
	case interface{ Unwrap() error }:
		walkErrTree(u.Unwrap(), visit)
	}
}

// recoverable reports whether a failed attempt is worth relaunching: the
// world tore down on a lost rank, or the failure is classified transient.
// A permanent failure with no rank loss (bad geometry, a corrupt source)
// would recur identically on every attempt, so the supervisor surfaces it
// instead of burning the budget.
func recoverable(err error, lost []int) bool {
	return len(lost) > 0 || errors.Is(err, mpi.ErrRankLost) || fault.IsTransient(err)
}

// restartBackoff doubles base per restart, capped.
func restartBackoff(base, cap time.Duration, restart int) time.Duration {
	d := base
	for i := 1; i < restart && d < cap; i++ {
		d *= 2
	}
	return min(d, cap)
}

// Supervise runs a distributed reconstruction to completion across rank
// loss: each attempt calls RunDistributed, and when the world tears down
// on a lost rank (or a transiently-classified failure), the supervisor
// re-plans over the survivors via ShrinkPlan, reopens the checkpoint
// journal, and relaunches in-process — under MaxRestarts with doubling
// backoff. With a journal wired in (OpenCheckpoint), a relaunch skips
// every slab already durable and the final volume is bit-identical to a
// fault-free run; the chaos kill-matrix test pins exactly that guarantee
// for every (rank, batch) single-kill schedule.
//
// Recovery is reported three ways: the returned SuperviseReport (one
// entry per attempt), the final ClusterReport's Restarts/LostRanks fields
// (and String() recovery line), and — when Cluster.Telemetry is set — the
// shared registry's supervise.restarts counter, supervise.lost_ranks and
// supervise.world_ranks gauges, plus one supervise.attempt span per
// launch (batch = attempt index).
//
// The report is returned non-nil even on failure, alongside a typed
// error: *RestartBudgetError (ErrRestartBudget) when the budget is spent,
// *ShrinkError (ErrWorldTooSmall) joined to the attempt failure when the
// survivors cannot host the plan, storage's ErrPlanMismatch when the
// journal belongs to a different plan, or the attempt error itself when
// it is not recoverable.
func Supervise(opts SuperviseOptions) (*SuperviseReport, error) {
	c := opts.Cluster
	if c.Plan == nil || c.Source == nil || c.Output == nil {
		return nil, fmt.Errorf("core: Supervise requires Cluster.Plan, Source and Output")
	}
	if c.Checkpoint != nil && opts.OpenCheckpoint != nil {
		return nil, fmt.Errorf("core: set Cluster.Checkpoint or OpenCheckpoint, not both")
	}
	maxRestarts := opts.MaxRestarts
	switch {
	case maxRestarts == 0:
		maxRestarts = DefaultMaxRestarts
	case maxRestarts < 0:
		maxRestarts = 0
	}
	base := opts.RestartBackoff
	if base <= 0 {
		base = DefaultRestartBackoff
	}
	backoffCap := opts.MaxRestartBackoff
	if backoffCap <= 0 {
		backoffCap = DefaultRestartBackoffCap
	}
	var shared *telemetry.Registry
	if !opts.Follower {
		shared = c.Telemetry.Shared()
	}
	restarts := shared.Counter("supervise.restarts")
	lostGauge := shared.Gauge("supervise.lost_ranks")
	worldGauge := shared.Gauge("supervise.world_ranks")

	rep := &SuperviseReport{}
	plan := c.Plan
	for attempt := 0; ; attempt++ {
		worldGauge.Set(int64(plan.Ranks()))
		run := c
		run.Plan = plan
		if opts.OpenCheckpoint != nil {
			ck, err := opts.OpenCheckpoint(plan.Fingerprint())
			if err != nil {
				return rep, fmt.Errorf("core: supervise attempt %d: %w", attempt, err)
			}
			run.Checkpoint = ck
		}
		endAttempt := shared.Span("supervise.attempt", attempt)
		t0 := time.Now()
		crep, err := RunDistributed(run)
		endAttempt()
		if cl, ok := run.Checkpoint.(io.Closer); ok && opts.OpenCheckpoint != nil {
			if cerr := cl.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("core: supervise attempt %d: close checkpoint: %w", attempt, cerr)
			}
		}
		lost := attemptLostRanks(err)
		rep.Attempts = append(rep.Attempts, SuperviseAttempt{
			World:   plan.Ranks(),
			Plan:    plan.String(),
			Elapsed: time.Since(t0),
			Err:     err,
			Lost:    lost,
		})
		rep.Plan = plan
		if crep != nil {
			crep.Restarts = rep.Restarts
			crep.LostRanks = append([]int(nil), rep.Lost...)
			rep.Final = crep
		}
		if err == nil {
			return rep, nil
		}
		if !recoverable(err, lost) {
			return rep, err
		}
		if rep.Restarts >= maxRestarts {
			return rep, &RestartBudgetError{Restarts: rep.Restarts, Err: err}
		}
		shrinkBy := len(lost)
		if shrinkBy == 0 && errors.Is(err, mpi.ErrRankLost) {
			// The world tore down (or timed out) without naming the dead —
			// a deadline expiry, say. Assume the minimum loss; if more
			// ranks are actually gone the next attempt will name them. A
			// purely transient failure (no loss, no teardown) retries at
			// full size instead.
			shrinkBy = 1
		}
		if shrinkBy > 0 {
			next, serr := ShrinkPlan(plan, plan.Ranks()-shrinkBy)
			if serr != nil {
				return rep, errors.Join(serr, err)
			}
			plan = next
			rep.Lost = append(rep.Lost, lost...)
			rep.TotalLost += shrinkBy
			lostGauge.Set(int64(rep.TotalLost))
		}
		rep.Restarts++
		restarts.Inc()
		time.Sleep(restartBackoff(base, backoffCap, rep.Restarts))
	}
}
