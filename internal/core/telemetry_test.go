package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"distfdk/internal/device"
	"distfdk/internal/fault"
	"distfdk/internal/pipeline"
	"distfdk/internal/projection"
	"distfdk/internal/telemetry"
)

// TestChaosTelemetryReconcile is the cross-layer closing of the loop: a
// distributed chaos run (transient faults + stragglers) with telemetry on
// must produce counters that reconcile exactly with the independently
// collected ClusterReport stats, retry/backoff evidence in the spans, and
// trace/metrics artifacts that pass their validators with every rank
// represented.
func TestChaosTelemetryReconcile(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(7,
		fault.Rule{Op: fault.OpLoad, Rank: fault.AnyRank, Nth: 1, Count: 1, Class: fault.Transient},
		fault.Rule{Op: fault.OpSend, Rank: 1, Nth: 2, Count: 2, Delay: 2 * time.Millisecond},
	)
	run := telemetry.NewRun(p.Ranks())
	sink, _ := NewVolumeSink(sys)
	rep, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: sink,
		FaultInjector:      in,
		CollectiveDeadline: 5 * time.Second,
		Retry: &fault.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   200 * time.Microsecond,
			MaxDelay:    2 * time.Millisecond,
			Seed:        7,
		},
		Telemetry: run,
	})
	if err != nil {
		t.Fatalf("transient chaos must be absorbed: %v", err)
	}
	if in.Fired() == 0 {
		t.Fatal("schedule injected nothing")
	}
	if len(rep.Telemetry) < p.Ranks() {
		t.Fatalf("report carries %d snapshots, want at least %d", len(rep.Telemetry), p.Ranks())
	}

	snapByRank := map[int]telemetry.Snapshot{}
	for _, s := range rep.Telemetry {
		snapByRank[s.Rank] = s
	}
	var totalRetries int64
	backoffSpans := 0
	for r := 0; r < p.Ranks(); r++ {
		s, ok := snapByRank[r]
		if !ok {
			t.Fatalf("rank %d missing from telemetry", r)
		}
		// Counters must reconcile exactly with the independently kept
		// mpi.Stats and BatchesDone — same operations, same placement.
		if want := rep.WorldStats[r].BytesSent + rep.GroupStats[r].BytesSent; s.Counters["mpi.bytes_sent"] != want {
			t.Errorf("rank %d: mpi.bytes_sent = %d, want world+group = %d", r, s.Counters["mpi.bytes_sent"], want)
		}
		if want := rep.WorldStats[r].BytesRecv + rep.GroupStats[r].BytesRecv; s.Counters["mpi.bytes_recv"] != want {
			t.Errorf("rank %d: mpi.bytes_recv = %d, want world+group = %d", r, s.Counters["mpi.bytes_recv"], want)
		}
		if want := int64(rep.BatchesDone[r]); s.Counters["core.batches"] != want {
			t.Errorf("rank %d: core.batches = %d, want %d", r, s.Counters["core.batches"], want)
		}
		totalRetries += s.Counters["fault.retries"]
		for _, sp := range s.Spans {
			if sp.Name == "backoff" {
				backoffSpans++
			}
		}
	}
	// The injected transient faults must be visible as retry evidence.
	if totalRetries == 0 {
		t.Error("no fault.retries recorded despite injected transient faults")
	}
	if backoffSpans == 0 {
		t.Error("no backoff spans recorded despite retries")
	}

	// The artifacts must validate, with every rank present in the trace.
	var trace bytes.Buffer
	if err := telemetry.WriteChromeTrace(&trace, rep.Telemetry); err != nil {
		t.Fatal(err)
	}
	sum, err := telemetry.ValidateChromeTrace(trace.Bytes())
	if err != nil {
		t.Fatalf("trace artifact invalid: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("trace has no events")
	}
	for r := 0; r < p.Ranks(); r++ {
		if !sum.Pids[r] {
			t.Errorf("rank %d has no track in the trace", r)
		}
	}
	// The run moved real messages with telemetry on, so the trace must
	// carry flow arrows and every one must link a send to its recv.
	if sum.FlowBegins == 0 {
		t.Error("trace carries no flow begin events despite mpi traffic")
	}
	if sum.FlowEnds == 0 {
		t.Error("trace carries no flow finish events despite mpi traffic")
	}
	if n := sum.Unmatched(); n > 0 {
		t.Errorf("%d flow begins have no finish", n)
	}
	var metrics bytes.Buffer
	if err := telemetry.WriteMetricsJSON(&metrics, rep.Telemetry); err != nil {
		t.Fatal(err)
	}
	mrep, err := telemetry.ValidateMetricsJSON(metrics.Bytes())
	if err != nil {
		t.Fatalf("metrics artifact invalid: %v", err)
	}
	// The artifact's totals must match ClusterReport's: sum of the
	// per-rank mpi.bytes_sent counters == sum of world+group BytesSent.
	var artifactSent, reportSent int64
	for _, rm := range mrep.Ranks {
		if rm.Rank == telemetry.SharedRank {
			continue
		}
		artifactSent += rm.Counters["mpi.bytes_sent"]
	}
	for r := 0; r < p.Ranks(); r++ {
		reportSent += rep.WorldStats[r].BytesSent + rep.GroupStats[r].BytesSent
	}
	if artifactSent != reportSent {
		t.Errorf("metrics artifact bytes_sent total %d != report total %d", artifactSent, reportSent)
	}

	// The printed summary must surface batches and the clean payload state.
	out := rep.String()
	if !bytes.Contains([]byte(out), []byte("unknown payloads: 0")) {
		t.Errorf("report summary missing unknown-payload line:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("counter skew")) {
		t.Errorf("report summary missing skew section:\n%s", out)
	}
}

// Single-device runs share the wiring: stage spans, ring counters and the
// tracer all report into one registry, and the elastic credit-wait
// counters appear when telemetry is on.
func TestSingleTelemetry(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sink, _ := NewVolumeSink(sys)
	rep, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: device.New("tel", 0, 2),
		Sink: sink, BPWorkers: 2, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["device.ring.load_rows"] == 0 {
		t.Error("ring loads not recorded")
	}
	if got := s.Counters["pipeline.backproject.dispatched"]; got != int64(rep.Slabs) {
		t.Errorf("pipeline.backproject.dispatched = %d, want %d batches", got, rep.Slabs)
	}
	stages := map[string]bool{}
	for _, sp := range s.Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{"load", "filter", "backproject", "store"} {
		if !stages[want] {
			t.Errorf("stage %q recorded no spans (have %v)", want, stages)
		}
	}
	// The auto-installed tracer and the registry share one span set.
	tr := pipeline.TracerFor(reg)
	if tr.Total() <= 0 {
		t.Error("tracer sees no wall-clock window")
	}
}

// TestCriticalPathAttribution pins the acceptance contract on a real
// deterministic 4-rank run: the extracted critical path tiles the
// measured makespan exactly (stronger than the 1% budget), the makespan
// is the true span window, and the attribution survives the metrics
// artifact round-trip and the printed report.
func TestCriticalPathAttribution(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := telemetry.NewRun(p.Ranks())
	sink, _ := NewVolumeSink(sys)
	rep, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: sink, Telemetry: run,
	})
	if err != nil {
		t.Fatal(err)
	}

	cp := telemetry.ComputeCriticalPath(rep.Telemetry)
	if cp == nil {
		t.Fatal("no critical path from a telemetered 4-rank run")
	}
	if got := cp.AttributedTotal(); got != cp.Makespan {
		t.Fatalf("attribution %v != makespan %v (acceptance allows 1%%; construction promises exact)", got, cp.Makespan)
	}
	var byClass time.Duration
	for _, ns := range cp.ByClass {
		byClass += ns
	}
	if byClass != cp.Makespan {
		t.Fatalf("class sums %v != makespan %v", byClass, cp.Makespan)
	}

	// The window must be the real one: earliest start / latest end over the
	// rank stage spans (container markers excluded, shared registry ignored).
	var lo, hi time.Duration
	first := true
	for _, s := range rep.Telemetry {
		if s.Rank == telemetry.SharedRank {
			continue
		}
		for _, sp := range s.Spans {
			if strings.HasPrefix(sp.Name, "phase.") || strings.HasPrefix(sp.Name, "supervise.") {
				continue
			}
			if first || sp.Start < lo {
				lo = sp.Start
			}
			if first || sp.End > hi {
				hi = sp.End
			}
			first = false
		}
	}
	if cp.Start != lo || cp.End != hi {
		t.Errorf("path window [%v,%v], spans cover [%v,%v]", cp.Start, cp.End, lo, hi)
	}
	if cp.CommFraction < 0 || cp.CommFraction > 1 || cp.WaitFraction < 0 || cp.WaitFraction > 1 {
		t.Errorf("fractions out of range: comm %g wait %g", cp.CommFraction, cp.WaitFraction)
	}

	// Artifact round-trip: the summary rides in distfdk-metrics/1 and the
	// validator enforces the same exact-sum invariant.
	var metrics bytes.Buffer
	if err := telemetry.WriteMetricsJSON(&metrics, rep.Telemetry); err != nil {
		t.Fatal(err)
	}
	mrep, err := telemetry.ValidateMetricsJSON(metrics.Bytes())
	if err != nil {
		t.Fatalf("metrics artifact with critical path invalid: %v", err)
	}
	if mrep.CriticalPath == nil {
		t.Fatal("metrics artifact missing the critical_path summary")
	}
	if mrep.CriticalPath.MakespanNs != int64(cp.Makespan) {
		t.Errorf("artifact makespan %d != computed %d", mrep.CriticalPath.MakespanNs, int64(cp.Makespan))
	}
	if !strings.Contains(rep.String(), "critical path:") {
		t.Error("ClusterReport summary missing the critical-path table")
	}
}

// Span batch tags must stay correct when the elastic back-projection
// stage runs concurrent workers: each batch yields exactly one
// backproject span carrying its own batch index, with no duplicates or
// cross-talk (run under -race this also proves the span store is safe
// for concurrent closers).
func TestSpanBatchTagsConcurrentWorkers(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sink, _ := NewVolumeSink(sys)
	rep, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: device.New("conc", 0, 2),
		Sink: sink, BPWorkers: 4, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slabs < 2 {
		t.Fatalf("want a multi-batch run, got %d slabs", rep.Slabs)
	}
	seen := map[int]int{}
	for _, sp := range reg.Snapshot().Spans {
		if sp.Name != "backproject" {
			continue
		}
		seen[sp.Batch]++
		if sp.End < sp.Start {
			t.Errorf("batch %d span inverted [%v,%v]", sp.Batch, sp.Start, sp.End)
		}
	}
	if len(seen) != rep.Slabs {
		t.Fatalf("backproject spans cover %d batches, want %d (%v)", len(seen), rep.Slabs, seen)
	}
	for b := 0; b < rep.Slabs; b++ {
		if seen[b] != 1 {
			t.Errorf("batch %d recorded %d backproject spans, want exactly 1", b, seen[b])
		}
	}
}
