package core

import (
	"fmt"
	"strings"
	"time"

	"distfdk/internal/telemetry"
)

// fmtBytes renders a byte count with a binary unit, compact enough for the
// per-rank summary lines.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// String renders the run summary the drivers print after a distributed
// reconstruction: one line per rank (batches executed, bytes moved on both
// communicators, retry activity when telemetry was on), the
// unknown-payload total — non-zero means the byte counts undercount real
// traffic and must be treated as a measurement error — and, when telemetry
// was collected, the cross-rank skew of every counter (max−min exposes the
// straggler).
func (r *ClusterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d ranks, elapsed %v\n", len(r.Ledgers), r.Elapsed.Round(time.Millisecond))
	counters := map[int]map[string]int64{}
	for _, s := range r.Telemetry {
		counters[s.Rank] = s.Counters
	}
	var unknown int64
	for i := range r.Ledgers {
		sent := r.WorldStats[i].BytesSent + r.GroupStats[i].BytesSent
		recv := r.WorldStats[i].BytesRecv + r.GroupStats[i].BytesRecv
		unknown += r.WorldStats[i].UnknownPayloads + r.GroupStats[i].UnknownPayloads
		fmt.Fprintf(&b, "rank %2d: batches %d", i, r.BatchesDone[i])
		if r.BatchesSkipped != nil && r.BatchesSkipped[i] > 0 {
			// Resumed run: these batches were already durable in the
			// journal, so BatchesDone stays reconciled with the
			// core.batches counter while the skips are accounted here.
			fmt.Fprintf(&b, " (+%d skipped)", r.BatchesSkipped[i])
		}
		fmt.Fprintf(&b, ", sent %s, recv %s", fmtBytes(sent), fmtBytes(recv))
		if c := counters[i]; c != nil {
			fmt.Fprintf(&b, ", retries %d", c["fault.retries"])
			if ns := c["fault.backoff_ns"]; ns > 0 {
				fmt.Fprintf(&b, " (backoff %v)", time.Duration(ns).Round(time.Microsecond))
			}
		}
		if !r.Completed[i] {
			b.WriteString(" [incomplete]")
		}
		b.WriteByte('\n')
	}
	// Kernel efficiency: how the updates split across the recurrence
	// kernel's three paths. Skipped samples are provably-zero work the
	// kernel never executed — a high skip share means the GUPS number
	// rides on clipping, not arithmetic.
	var kTotal, kInterior, kBorder, kSkipped, kReanchors int64
	var kSIMDFull, kSIMDTail, kSIMDFallback int64
	for i := range r.Ledgers {
		kTotal += r.Ledgers[i].VoxelUpdates
		kInterior += r.Ledgers[i].InteriorSamples
		kBorder += r.Ledgers[i].BorderSamples
		kSkipped += r.Ledgers[i].SkippedSamples
		kReanchors += r.Ledgers[i].Reanchors
		kSIMDFull += r.Ledgers[i].SIMDFullGroups
		kSIMDTail += r.Ledgers[i].SIMDTailSamples
		kSIMDFallback += r.Ledgers[i].SIMDFallbacks
	}
	if kTotal > 0 && kInterior+kBorder+kSkipped > 0 {
		pct := func(n int64) float64 { return 100 * float64(n) / float64(kTotal) }
		fmt.Fprintf(&b, "kernel: %.1f%% interior / %.1f%% border / %.1f%% skipped of %d updates, %d re-anchors\n",
			pct(kInterior), pct(kBorder), pct(kSkipped), kTotal, kReanchors)
	}
	// Vector-lane efficiency of the simd kernel: interior columns executed
	// as whole 8-lane vectors vs under a partial lane mask. Only printed
	// when the simd kernel actually ran; a fallback note when it was
	// requested but degraded.
	if vec := kSIMDFull*8 + kSIMDTail; vec > 0 {
		fmt.Fprintf(&b, "kernel simd: %d full 8-lane groups, %d masked-tail samples (%.1f%% of interior vectorised)\n",
			kSIMDFull, kSIMDTail, 100*float64(kSIMDFull*8)/float64(vec))
	}
	if kSIMDFallback > 0 {
		fmt.Fprintf(&b, "kernel simd: %d launches fell back to the recurrence kernel\n", kSIMDFallback)
	}
	if r.Restarts > 0 || len(r.LostRanks) > 0 {
		fmt.Fprintf(&b, "recovery: %d restarts, lost ranks %v, finished on %d ranks\n",
			r.Restarts, r.LostRanks, len(r.Ledgers))
	}
	fmt.Fprintf(&b, "unknown payloads: %d", unknown)
	if unknown > 0 {
		b.WriteString(" (byte counts undercount real traffic!)")
	}
	b.WriteByte('\n')
	// Critical-path attribution: which rank × stage × class chain actually
	// bounded the makespan — the "why is it slow" companion to the skew
	// table's "who is slow".
	if cp := telemetry.ComputeCriticalPath(r.Telemetry); cp != nil {
		b.WriteString(cp.RenderTable(6))
	}
	if skew := telemetry.AggregateCounters(r.Telemetry); len(skew) > 0 {
		b.WriteString("counter skew across ranks (min / mean / max):\n")
		for _, name := range telemetry.SortedCounterNames(r.Telemetry) {
			sk, ok := skew[name]
			if !ok {
				continue // shared-registry-only counter: no rank skew
			}
			fmt.Fprintf(&b, "  %-28s %12d / %14.1f / %12d\n", name, sk.Min, sk.Mean, sk.Max)
		}
	}
	return b.String()
}
