package core

import (
	"fmt"
	"time"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/fault"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/mpi"
	"distfdk/internal/projection"
	"distfdk/internal/telemetry"
	"distfdk/internal/volume"
)

// ClusterOptions configures a distributed reconstruction across Ng groups
// of Nr ranks (Figure 6). Every rank runs its own load → filter →
// back-project loop over its projection window; the Nr partial slabs of
// each batch meet in a segmented reduction on the group communicator and
// the group leader stores the result.
type ClusterOptions struct {
	Plan *Plan
	// Source must be safe for concurrent partial loads (MemorySource and
	// storage.FileSource both are).
	Source projection.Source
	// Window selects the ramp apodisation.
	Window filter.Window
	// DeviceMemBytes caps each rank's simulated device memory (0 =
	// unlimited).
	DeviceMemBytes int64
	// WorkersPerRank bounds each rank's kernel parallelism; defaults to
	// 1 since ranks already run concurrently.
	WorkersPerRank int
	// Kernel selects the back-projection arithmetic (default
	// KernelRecurrence; KernelExact retains the PR-1 per-sample form).
	Kernel backproject.Kernel
	// RingLayout selects each rank's projection-ring memory layout
	// (default row-interleaved).
	RingLayout device.RingLayout
	// Fusion controls the filter→upload handoff. The per-rank batch loop
	// is sequential, so FusionAuto (and FusionOn) fuse; FusionOff keeps
	// the separate filter and upload passes.
	Fusion FusionMode
	// Hierarchical enables the node-leader reduction of Section 4.4.2
	// with RanksPerNode ranks per node.
	Hierarchical bool
	RanksPerNode int
	// ReduceChunk sets the segment size (in float32 elements) for the
	// chunk-pipelined slab reduction: 0 picks one XY plane (NX·NY), which
	// overlaps tree latency with accumulation plane by plane; a negative
	// value disables chunking and uses the monolithic Reduce. Ignored when
	// Hierarchical is set. Every ReduceChunk setting — chunked at any size
	// or monolithic — produces bit-identical volumes, because the fused
	// accumulate fixes the per-element summation order. The hierarchical
	// path matches them only when RanksPerNode is a power of two dividing
	// the group size (see mpi.HierarchicalReduce).
	ReduceChunk int
	// Output receives reduced slabs from group leaders (required).
	Output SlabSink
	// Retry, when set, retries transient load and store failures with
	// capped exponential backoff on the failing rank; permanent failures
	// abort the rank (and with it the world). Nil means a single attempt.
	Retry *fault.RetryPolicy
	// FaultInjector, when set, deterministically injects faults into every
	// rank's load, store, send and receive paths for chaos testing. Nil
	// costs nothing on the happy path.
	FaultInjector *fault.Injector
	// CollectiveDeadline bounds how long a rank blocks in any
	// point-to-point or collective operation before a lost peer surfaces
	// as a typed mpi.ErrRankLost instead of a hang. Zero waits forever
	// (world teardown still wakes blocked ranks when a peer errors out).
	CollectiveDeadline time.Duration
	// Checkpoint, when set, journals each output slab (keyed by its first
	// slice z0) after the group leader has durably stored it, and skips
	// slabs the log already records — pass a reopened journal to resume a
	// killed run, even one replanned onto a smaller world (see Supervise).
	// The resumed volume is bit-identical to an uninterrupted one.
	Checkpoint CheckpointLog
	// Launch, when set, replaces the in-process mpi.RunWith world with a
	// custom launcher — the multi-process socket transport wires
	// nettrans.Node.Launcher here, so the same batch loop runs unchanged
	// whether ranks are goroutines or live in other OS processes. The
	// launcher must honour the mpi world contract: run fn once per rank it
	// hosts (remote ranks run in their own processes), tear down on error
	// with RankLostError attribution, and return the joined rank errors.
	// Nil keeps the default single-process channel world.
	Launch func(n int, opt mpi.Options, fn func(c *mpi.Comm) error) error
	// Telemetry, when set, collects the run's metrics and spans: each rank
	// reports its stage spans, ring traffic, collective latency and retry
	// activity into Telemetry.Rank(rank), and the final snapshots land in
	// ClusterReport.Telemetry for export (Chrome trace, metrics JSON,
	// skew summary). Build with telemetry.NewRun(plan.Ranks()). Nil keeps
	// every instrumented path at a single pointer check.
	Telemetry *telemetry.Run
}

// ClusterReport aggregates per-rank observations of a distributed run.
type ClusterReport struct {
	Elapsed time.Duration
	// Ledgers holds each world rank's device ledger.
	Ledgers []device.Ledger
	// WorldStats and GroupStats hold each rank's traffic on the world
	// and group communicators.
	WorldStats []mpi.Stats
	GroupStats []mpi.Stats
	// Completed marks ranks whose full batch loop finished. When
	// RunDistributed returns an error the partial report still carries
	// the survivors' ledgers and stats; a rank's other slots are only
	// meaningful where Completed is true.
	Completed []bool
	// BatchesDone counts the batches each rank executed; BatchesSkipped
	// counts the checkpointed batches each rank skipped on resume. The two
	// are disjoint, so BatchesDone always reconciles with the per-rank
	// `core.batches` telemetry counter and BatchesSkipped with
	// `core.batches_skipped`, resumed run or not.
	BatchesDone    []int
	BatchesSkipped []int
	// Restarts and LostRanks are filled in by Supervise when the run was
	// the final attempt of a supervised shrink-and-resume: how many times
	// the world was relaunched, and which world ranks (numbered in the
	// attempt that lost them) were declared dead along the way. Zero and
	// empty for an unsupervised run.
	Restarts  int
	LostRanks []int
	// Telemetry holds each registry's final snapshot (ranks in order, the
	// shared registry last) when ClusterOptions.Telemetry was set — the
	// input to telemetry.WriteChromeTrace / WriteMetricsJSON and the skew
	// section of String(). Populated even when the run returns an error,
	// so a chaos run's partial trace is still exportable.
	Telemetry []telemetry.Snapshot
}

// TotalReduceBytes sums the bytes every rank sent during segmented
// reductions — the paper's headline communication metric.
func (r *ClusterReport) TotalReduceBytes() int64 {
	var total int64
	for _, s := range r.GroupStats {
		total += s.BytesSent
	}
	return total
}

// TotalH2DBytes sums host→device traffic across ranks.
func (r *ClusterReport) TotalH2DBytes() int64 {
	var total int64
	for _, l := range r.Ledgers {
		total += l.H2DBytes
	}
	return total
}

// RunDistributed executes the full distributed FBP framework in-process:
// MPI ranks as goroutines, grouped by Split (Section 4.4.1), each batch
// ending in one segmented Reduce (Section 4.4.2) instead of the global
// collectives of prior frameworks.
//
// On failure the world tears down deterministically — a lost rank surfaces
// to its peers as a typed mpi.ErrRankLost within CollectiveDeadline rather
// than a hang — and the partial ClusterReport is returned alongside the
// error with the surviving ranks' observations filled in.
func RunDistributed(opts ClusterOptions) (*ClusterReport, error) {
	p := opts.Plan
	if p == nil || opts.Source == nil || opts.Output == nil {
		return nil, fmt.Errorf("core: Plan, Source and Output are required")
	}
	if opts.Hierarchical && opts.RanksPerNode <= 0 {
		return nil, fmt.Errorf("core: hierarchical reduction needs RanksPerNode")
	}
	nu, np, nv := opts.Source.Dims()
	if nu != p.Sys.NU || np != p.Sys.NP || nv != p.Sys.NV {
		return nil, fmt.Errorf("core: source %dx%dx%d does not match system %dx%dx%d",
			nu, np, nv, p.Sys.NU, p.Sys.NP, p.Sys.NV)
	}
	workers := opts.WorkersPerRank
	if workers <= 0 {
		workers = 1
	}
	report := &ClusterReport{
		Ledgers:     make([]device.Ledger, p.Ranks()),
		WorldStats:  make([]mpi.Stats, p.Ranks()),
		GroupStats:  make([]mpi.Stats, p.Ranks()),
		Completed:   make([]bool, p.Ranks()),
		BatchesDone: make([]int, p.Ranks()),

		BatchesSkipped: make([]int, p.Ranks()),
	}
	// The assignment below must stay behind the pointer check: a typed-nil
	// interface would defeat the runtime's nil fast path.
	var icept mpi.Interceptor
	if opts.FaultInjector != nil {
		icept = opts.FaultInjector
	}
	launch := opts.Launch
	if launch == nil {
		launch = mpi.RunWith
	}
	start := time.Now()
	err := launch(p.Ranks(), mpi.Options{
		Deadline:    opts.CollectiveDeadline,
		Interceptor: icept,
		Telemetry:   opts.Telemetry,
	}, func(world *mpi.Comm) error {
		rank := world.Rank()
		g := p.GroupOf(rank)
		r := p.RankInGroup(rank)
		reg := opts.Telemetry.Rank(rank)
		retry := opts.Retry.Instrumented(reg)
		batches := reg.Counter("core.batches")
		batchesSkipped := reg.Counter("core.batches_skipped")
		// Live-introspection feeds: the current batch gauge and stage/phase
		// status keys are what /statusz reports while the loop runs.
		curBatch := reg.Gauge("core.current_batch")
		src := opts.Source
		if opts.FaultInjector != nil {
			src = fault.Source(opts.Source, opts.FaultInjector, rank)
		}
		var sink SlabSink = opts.Output
		if opts.FaultInjector != nil {
			sink = fault.Sink(opts.Output, opts.FaultInjector, rank)
		}
		group, err := world.Split(g, rank)
		if err != nil {
			return err
		}
		pLo, pHi := p.ProjWindow(r)
		mats := KernelMatrices(p.Sys, pLo, pHi)
		fdk, err := NewFilter(p.Sys, opts.Window)
		if err != nil {
			return err
		}
		parker, err := NewParker(p.Sys)
		if err != nil {
			return err
		}
		dev := device.New(fmt.Sprintf("rank%d", rank), opts.DeviceMemBytes, workers)
		dev.SetTelemetry(reg)
		ring, err := device.NewProjRingLayout(dev, p.Sys.NU, pHi-pLo, p.RingDepth(g), opts.RingLayout)
		if err != nil {
			return err
		}
		defer ring.Close()
		if err := dev.Alloc(p.SlabBytes()); err != nil {
			return fmt.Errorf("rank %d slab buffer: %w", rank, err)
		}
		defer dev.Free(p.SlabBytes())

		// Phase markers: when the injector carries a scenario phase
		// schedule, each rank's trace shows one warmup/inject/recovery
		// span per contiguous phase window — the inject window is then
		// visible in the Chrome trace right next to the faults it scoped,
		// and the SLO gate can align latencies to it.
		var endPhase func()
		phase := ""
		markPhase := func(c int) {
			ph := opts.FaultInjector.PhaseOf(rank)
			if ph == "" || ph == phase {
				return
			}
			if endPhase != nil {
				endPhase()
			}
			endPhase = reg.Span("phase."+ph, c)
			phase = ph
			reg.SetStatus("phase", ph)
		}
		defer func() {
			if endPhase != nil {
				endPhase()
			}
		}()

		prev := geometry.RowRange{}
		reg.SetStatus("stage", "run")
		defer reg.SetStatus("stage", "done")
		for c := 0; c < p.BatchCount; c++ {
			curBatch.Set(int64(c))
			z0, nz := p.SlabZ(g, c)
			if nz == 0 {
				continue // consistent across the whole group
			}
			// The batch boundary is the rank-kill injection point of the
			// chaos matrix: a scheduled kill surfaces here as a permanent
			// fault.Error, aborting this rank so its peers observe the loss
			// through world teardown.
			if opts.FaultInjector != nil {
				if kerr := opts.FaultInjector.BatchStart(rank, c); kerr != nil {
					return fmt.Errorf("rank %d batch %d: %w", rank, c, kerr)
				}
				markPhase(c)
			}
			// A checkpointed batch is skipped by the whole group: Done(z0)
			// reads the same pre-run journal state on every rank, and the
			// leader only records a batch after its group has passed it, so
			// the collectives below always pair up. The key is the slab's
			// output identity z0, not (g, c) — a journal recorded by a
			// larger world resumes cleanly after a shrink renumbers both.
			// `prev` deliberately tracks executed batches only —
			// DifferentialRows then reloads whatever a skipped batch would
			// have left resident.
			if opts.Checkpoint != nil && opts.Checkpoint.Done(z0) {
				report.BatchesSkipped[rank]++
				batchesSkipped.Inc()
				continue
			}
			rows := p.SlabRows(g, c)
			diff := geometry.DifferentialRows(prev, rows)
			if !prev.IsEmpty() && rows.Lo >= prev.Hi {
				ring.Reset()
			} else {
				ring.Release(rows.Lo)
			}
			if !diff.IsEmpty() {
				var st *projection.Stack
				endLoad := reg.Span("load", c)
				lerr := retry.Do(func() error {
					var e error
					st, e = src.LoadRows(diff, pLo, pHi)
					return e
				})
				endLoad()
				if lerr != nil {
					return fmt.Errorf("rank %d batch %d load: %w", rank, c, lerr)
				}
				if opts.Fusion != FusionOff {
					// The rank loop is sequential, so the fused fill is
					// always safe; the combined work lands in the filter
					// span and the upload span records the (now empty)
					// handoff.
					endFilter := reg.Span("filter", c)
					if err := fuseUpload(ring, st, fdk, parker, 1); err != nil {
						return fmt.Errorf("rank %d batch %d filter: %w", rank, c, err)
					}
					endFilter()
					endUpload := reg.Span("upload", c)
					endUpload()
				} else {
					endFilter := reg.Span("filter", c)
					if err := applyParker(parker, st); err != nil {
						return fmt.Errorf("rank %d batch %d parker: %w", rank, c, err)
					}
					count := st.NV * st.NP
					vOf := func(i int) int { return st.V0 + i/st.NP }
					if err := fdk.FilterRows(st.Data, count, vOf, 1); err != nil {
						return fmt.Errorf("rank %d batch %d filter: %w", rank, c, err)
					}
					endFilter()
					endUpload := reg.Span("upload", c)
					if err := ring.LoadRows(st, st.Rows()); err != nil {
						return fmt.Errorf("rank %d batch %d: %w", rank, c, err)
					}
					endUpload()
				}
			}
			prev = rows

			slab, err := volume.NewSlab(p.Sys.NX, p.Sys.NY, nz, z0)
			if err != nil {
				return err
			}
			endBP := reg.Span("backproject", c)
			if err := backproject.StreamingKernel(dev, ring, mats, slab, rows, opts.Kernel); err != nil {
				return fmt.Errorf("rank %d batch %d: %w", rank, c, err)
			}
			endBP()
			dev.RecordD2H(slab.Bytes())

			// Segmented reduction: only within the group (Figure 3b),
			// chunk-pipelined through the tree by default.
			endReduce := reg.Span("reduce", c)
			switch {
			case opts.Hierarchical:
				err = group.HierarchicalReduce(0, slab.Data, opts.RanksPerNode)
			case opts.ReduceChunk >= 0:
				chunk := opts.ReduceChunk
				if chunk == 0 {
					chunk = p.Sys.NX * p.Sys.NY
				}
				err = group.ReduceChunked(0, slab.Data, chunk)
			default:
				err = group.Reduce(0, slab.Data)
			}
			endReduce()
			if err != nil {
				return fmt.Errorf("rank %d batch %d reduce: %w", rank, c, err)
			}
			if group.Rank() == 0 {
				endStore := reg.Span("store", c)
				// Fixed slab offsets make a retried store idempotent.
				if err := retry.Do(func() error { return sink.WriteSlab(slab) }); err != nil {
					return fmt.Errorf("rank %d batch %d store: %w", rank, c, err)
				}
				if opts.Checkpoint != nil {
					// Data before journal: the slab must be durable before
					// the entry that declares it done.
					if err := syncSink(opts.Output); err != nil {
						return fmt.Errorf("rank %d batch %d sync: %w", rank, c, err)
					}
					if err := opts.Checkpoint.Record(z0, c); err != nil {
						return fmt.Errorf("rank %d batch %d checkpoint: %w", rank, c, err)
					}
				}
				endStore()
			}
			report.BatchesDone[rank]++
			batches.Inc()
		}
		report.Ledgers[rank] = dev.Snapshot()
		report.WorldStats[rank] = world.Stats()
		report.GroupStats[rank] = group.Stats()
		report.Completed[rank] = true
		return nil
	})
	report.Elapsed = time.Since(start)
	// Snapshots are taken even on error so a chaos run's partial trace and
	// metrics are still exportable.
	report.Telemetry = opts.Telemetry.Snapshots()
	if err != nil {
		// Partial report: ledgers and stats are populated only for ranks
		// that completed; BatchesDone still shows how far each rank got.
		return report, err
	}
	return report, nil
}
