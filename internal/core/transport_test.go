package core

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"distfdk/internal/fault"
	"distfdk/internal/mpi/nettrans"
	"distfdk/internal/projection"
	"distfdk/internal/storage"
	"distfdk/internal/telemetry"
)

// transportFleet builds a 3-proc loopback TCP fleet shaped for a 4-rank
// (Ng=2, Nr=2) reconstruction.
func transportFleet(t *testing.T, cfg nettrans.Config) *nettrans.Fleet {
	t.Helper()
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
	if cfg.DeathAfter == 0 {
		cfg.DeathAfter = 2 * time.Second
	}
	fl, err := nettrans.NewFleet(3, cfg)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(fl.Close)
	return fl
}

// TestTransportReconstructionBitIdentical reconstructs the same 4-rank
// plan over the in-process channel world and over a 3-process TCP fleet
// and requires bit-identical volumes: the socket transport must not
// perturb the float32 summation order, the slab routing, or anything
// else about the pipeline.
func TestTransportReconstructionBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	ref, _ := NewVolumeSink(sys)
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: ref}); err != nil {
		t.Fatal(err)
	}
	want := float32Bytes(ref.V.Data)

	fl := transportFleet(t, nettrans.Config{})
	sink, _ := NewVolumeSink(sys)
	var wg sync.WaitGroup
	errs := make([]error, len(fl.Nodes))
	for i, n := range fl.Nodes {
		// Group leaders live on the coordinator (proc 0), so only its sink
		// ever sees a slab; followers run the same batch loop against a
		// discard sink.
		out := SlabSink(DiscardSink{})
		if i == 0 {
			out = sink
		}
		wg.Add(1)
		go func(i int, n *nettrans.Node, out SlabSink) {
			defer wg.Done()
			_, errs[i] = RunDistributed(ClusterOptions{
				Plan: p, Source: src, Output: out,
				Launch:             n.Launcher(p.NRanksPerGroup),
				CollectiveDeadline: 20 * time.Second,
			})
		}(i, n, out)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
	if got := float32Bytes(sink.V.Data); !bytes.Equal(got, want) {
		t.Fatal("TCP-transport volume is not bit-identical to the channel world")
	}
}

// TestTransportSupervisedRecoveryBitIdentical is the full robustness
// drill over sockets: a wire-level connection sever mid-run (absorbed
// transparently by the link's reconnect + replay) followed by a rank
// kill on a worker process, which fails the epoch world-wide. Every
// process's supervisor must observe the same typed loss, shrink to the
// same 2-rank plan, resume from the shared journal, and leave the
// coordinator's volume byte-identical to a fault-free run.
func TestTransportSupervisedRecoveryBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	ref, _ := NewVolumeSink(sys)
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: ref}); err != nil {
		t.Fatal(err)
	}
	want := float32Bytes(ref.V.Data)

	// One seeded schedule, shared by the whole fleet: sever the connection
	// under rank 1's second outgoing frame, then kill rank 1 (hosted on
	// worker proc 1) at batch 1.
	inj := fault.NewInjector(7, fault.Rule{Op: fault.OpSever, Rank: 1, Nth: 2})
	inj.ScheduleKill(1, 1)
	reg := telemetry.NewRegistry()
	fl := transportFleet(t, nettrans.Config{Injector: inj, Telemetry: reg})

	journal := filepath.Join(t.TempDir(), "vol.journal")
	sink, _ := NewVolumeSink(sys)
	run := telemetry.NewRun(p.Ranks())
	var wg sync.WaitGroup
	errs := make([]error, len(fl.Nodes))
	reports := make([]*SuperviseReport, len(fl.Nodes))
	for i, n := range fl.Nodes {
		out := SlabSink(DiscardSink{})
		if i == 0 {
			out = sink
		}
		wg.Add(1)
		go func(i int, n *nettrans.Node, out SlabSink) {
			defer wg.Done()
			reports[i], errs[i] = Supervise(SuperviseOptions{
				Cluster: ClusterOptions{
					Plan: p, Source: src, Output: out,
					FaultInjector:      inj,
					Launch:             n.Launcher(p.NRanksPerGroup),
					CollectiveDeadline: 20 * time.Second,
					Telemetry:          run,
				},
				// Every process reopens the same journal per attempt; only
				// the coordinator's group leaders ever append to it.
				OpenCheckpoint: func(fp string) (CheckpointLog, error) {
					return storage.OpenJournal(journal, fp)
				},
				MaxRestarts:    2,
				RestartBackoff: time.Millisecond,
				Follower:       i != 0,
			})
		}(i, n, out)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d supervised run did not recover: %v\n%s", i, err, reports[i])
		}
	}
	if inj.PendingKills() != 0 {
		t.Fatal("scheduled kill never fired")
	}
	// Every process made the same recovery decision.
	for i, rep := range reports {
		if rep.Restarts != reports[0].Restarts || rep.Plan.Fingerprint() != reports[0].Plan.Fingerprint() {
			t.Fatalf("proc %d diverged from coordinator: %d restarts on %s vs %d on %s",
				i, rep.Restarts, rep.Plan, reports[0].Restarts, reports[0].Plan)
		}
	}
	if reports[0].Restarts < 1 {
		t.Fatalf("no restart happened: %s", reports[0])
	}
	if reports[0].Plan.Ranks() >= p.Ranks() {
		t.Fatalf("world did not shrink: %s", reports[0].Plan)
	}
	// The sever actually exercised the reconnect path.
	if reg.Snapshot().Counters["transport.reconnects"] < 1 {
		t.Fatal("injected sever never forced a reconnect")
	}
	// Only the coordinator recorded supervise telemetry (followers are
	// silent), so restarts count once.
	if got := run.Shared().Counter("supervise.restarts").Value(); got != int64(reports[0].Restarts) {
		t.Fatalf("supervise.restarts = %d, want %d (followers must not double-count)",
			got, reports[0].Restarts)
	}
	if got := float32Bytes(sink.V.Data); !bytes.Equal(got, want) {
		t.Fatal("supervised socket recovery is not byte-identical to the fault-free volume")
	}
}
