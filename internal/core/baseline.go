package core

import (
	"fmt"
	"time"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/mpi"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

// BaselineOptions configures the batch-decomposition baseline that the
// paper compares against (the iFDK / Lu et al. scheme of Table 2): the
// input is split only along the projection-batch axis Np; every rank
// back-projects full-height projections into the full volume, the volume is
// reduced in one global collective over all ranks, and out-of-core
// operation (ChunkCount > 1) re-uploads the rank's entire projection share
// for every volume chunk — the redundancy the paper's 2-D decomposition
// eliminates.
type BaselineOptions struct {
	Sys *geometry.System
	// Ranks is the world size; NP must be divisible by it.
	Ranks int
	// ChunkCount splits the volume into Z chunks processed serially.
	// 1 keeps the whole volume resident (RTK-style, bounded by device
	// memory); larger values trade memory for redundant transfers.
	ChunkCount int
	Source     projection.Source
	Window     filter.Window
	// DeviceMemBytes caps each rank's device memory (0 = unlimited).
	DeviceMemBytes int64
	WorkersPerRank int
	// Output receives reduced chunks at rank 0 (required).
	Output SlabSink
}

// RunBatchBaseline executes the batch-only decomposition. It returns the
// same report type as RunDistributed so experiments can compare traffic
// like-for-like.
func RunBatchBaseline(opts BaselineOptions) (*ClusterReport, error) {
	sys := opts.Sys
	if sys == nil || opts.Source == nil || opts.Output == nil {
		return nil, fmt.Errorf("core: Sys, Source and Output are required")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opts.Ranks <= 0 || sys.NP%opts.Ranks != 0 {
		return nil, fmt.Errorf("core: NP=%d not divisible by %d ranks", sys.NP, opts.Ranks)
	}
	chunks := opts.ChunkCount
	if chunks <= 0 {
		chunks = 1
	}
	if chunks > sys.NZ {
		return nil, fmt.Errorf("core: %d chunks exceed NZ=%d", chunks, sys.NZ)
	}
	workers := opts.WorkersPerRank
	if workers <= 0 {
		workers = 1
	}
	chunkNZ := ceilDiv(sys.NZ, chunks)

	report := &ClusterReport{
		Ledgers:    make([]device.Ledger, opts.Ranks),
		WorldStats: make([]mpi.Stats, opts.Ranks),
		GroupStats: make([]mpi.Stats, opts.Ranks),
	}
	start := time.Now()
	err := mpi.Run(opts.Ranks, func(world *mpi.Comm) error {
		rank := world.Rank()
		share := sys.NP / opts.Ranks
		pLo, pHi := rank*share, (rank+1)*share
		mats := KernelMatrices(sys, pLo, pHi)
		fdk, err := NewFilter(sys, opts.Window)
		if err != nil {
			return err
		}
		dev := device.New(fmt.Sprintf("baseline%d", rank), opts.DeviceMemBytes, workers)

		// The baseline loads and filters its full-height share once on
		// the host (no Nv split is possible without the paper's
		// decomposition).
		st, err := opts.Source.LoadRows(geometry.RowRange{Lo: 0, Hi: sys.NV}, pLo, pHi)
		if err != nil {
			return fmt.Errorf("rank %d load: %w", rank, err)
		}
		parker, err := NewParker(sys)
		if err != nil {
			return err
		}
		if err := applyParker(parker, st); err != nil {
			return fmt.Errorf("rank %d parker: %w", rank, err)
		}
		vOf := func(i int) int { return st.V0 + i/st.NP }
		if err := fdk.FilterRows(st.Data, st.NV*st.NP, vOf, 1); err != nil {
			return fmt.Errorf("rank %d filter: %w", rank, err)
		}

		stackBytes := st.Bytes()
		for c := 0; c < chunks; c++ {
			z0 := c * chunkNZ
			nz := min(chunkNZ, sys.NZ-z0)
			if nz <= 0 {
				continue
			}
			chunkBytes := 4 * int64(sys.NX) * int64(sys.NY) * int64(nz)
			// Device must hold the full projection share AND the
			// chunk — the O(Nu×Nv) input lower bound of Table 2.
			if err := dev.Alloc(stackBytes + chunkBytes); err != nil {
				return fmt.Errorf("rank %d chunk %d: %w", rank, c, err)
			}
			// The share is re-uploaded for every chunk: without the
			// Nv split there is no differential update to exploit.
			dev.RecordH2D(stackBytes, 1)

			slab, err := volume.NewSlab(sys.NX, sys.NY, nz, z0)
			if err != nil {
				return err
			}
			if err := backproject.Batch(dev, st, mats, slab); err != nil {
				return fmt.Errorf("rank %d chunk %d: %w", rank, c, err)
			}
			dev.RecordD2H(slab.Bytes())
			dev.Free(stackBytes + chunkBytes)

			// One global collective across all ranks.
			if err := world.Reduce(0, slab.Data); err != nil {
				return fmt.Errorf("rank %d chunk %d reduce: %w", rank, c, err)
			}
			if rank == 0 {
				if err := opts.Output.WriteSlab(slab); err != nil {
					return err
				}
			}
		}
		report.Ledgers[rank] = dev.Snapshot()
		report.WorldStats[rank] = world.Stats()
		report.GroupStats[rank] = world.Stats()
		return nil
	})
	report.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	return report, nil
}
