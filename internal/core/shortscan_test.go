package core

import (
	"math"
	"testing"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/forward"
	"distfdk/internal/phantom"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

func TestShortScanGeometryHelpers(t *testing.T) {
	sys := testSystem()
	if sys.IsShortScan() {
		t.Fatal("default full scan misdetected as short scan")
	}
	want := math.Atan2((float64(sys.NU)-1)/2*sys.DU, sys.DSD)
	if got := sys.FanHalfAngle(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FanHalfAngle = %g, want %g", got, want)
	}
	if got := sys.ShortScanRange(); math.Abs(got-(math.Pi+2*want)) > 1e-12 {
		t.Fatalf("ShortScanRange = %g", got)
	}
	sys.AngleRange = sys.ShortScanRange()
	if !sys.IsShortScan() {
		t.Fatal("short scan not detected")
	}
	// Offset detectors enlarge the fan on one side.
	sys.SigmaU = 10
	if sys.FanHalfAngle() <= want {
		t.Fatal("σu offset must enlarge the worst-case fan angle")
	}
}

func TestNewParkerNilForFullScan(t *testing.T) {
	pk, err := NewParker(testSystem())
	if err != nil || pk != nil {
		t.Fatalf("full scan should yield nil Parker, got %v, %v", pk, err)
	}
	if err := applyParker(nil, nil); err != nil {
		t.Fatalf("nil parker apply: %v", err)
	}
}

// A Parker-weighted short scan must reconstruct the same densities as the
// full scan: the sphere centre recovers its density and the short-scan
// volume stays close to the full-scan one.
func TestShortScanReconstructionQuality(t *testing.T) {
	ph := phantom.UniformSphere(0.5, 1.5)
	const scale = 5.0

	run := func(angleRange float64, np int) *volume.Volume {
		sys := testSystem()
		sys.NP = np
		sys.AngleRange = angleRange
		st, err := forward.Project(sys, ph, scale, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(sys, 1, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		sink, err := NewVolumeSink(sys)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReconstructSingle(ReconOptions{
			Plan: plan, Source: &projection.MemorySource{Full: st},
			Device: device.New("ss", 0, 2), Sink: sink,
		}); err != nil {
			t.Fatal(err)
		}
		return sink.V
	}

	fullVol := run(0, 72) // full 2π scan
	shortRange := testSystem().ShortScanRange()
	shortVol := run(shortRange, 48)

	ci, cj, ck := fullVol.NX/2, fullVol.NY/2, fullVol.NZ/2
	fullCentre := float64(fullVol.At(ci, cj, ck))
	shortCentre := float64(shortVol.At(ci, cj, ck))
	if math.Abs(shortCentre-1.5)/1.5 > 0.12 {
		t.Fatalf("short-scan centre density %g, want 1.5±12%%", shortCentre)
	}
	if math.Abs(shortCentre-fullCentre)/fullCentre > 0.1 {
		t.Fatalf("short scan centre %g deviates from full scan %g", shortCentre, fullCentre)
	}
	stats, err := volume.Compare(fullVol, shortVol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RMSE > 0.12 {
		t.Fatalf("short-vs-full RMSE %g too high", stats.RMSE)
	}
}

// Without Parker weighting a short scan double-counts half the rays and
// under-counts the rest; the reconstruction must be visibly worse than the
// weighted one. This guards against the weighting being silently skipped.
func TestShortScanWithoutParkerIsWorse(t *testing.T) {
	ph := phantom.UniformSphere(0.5, 1.5)
	const scale = 5.0
	sys := testSystem()
	sys.NP = 48
	// An over-scan (1.5π): half the rays are measured twice, so skipping
	// the redundancy weights double-counts a large angular wedge.
	sys.AngleRange = 1.5 * math.Pi
	st, err := forward.Project(sys, ph, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ph.Voxelize(sys, scale, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Weighted (normal path).
	plan, _ := NewPlan(sys, 1, 1, 4)
	weighted, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: plan, Source: &projection.MemorySource{Full: st},
		Device: device.New("w", 0, 2), Sink: weighted,
	}); err != nil {
		t.Fatal(err)
	}

	// Unweighted: bypass the driver's Parker application by filtering a
	// copy manually and back-projecting with the Batch kernel.
	unweighted, _ := volume.New(sys.NX, sys.NY, sys.NZ)
	raw := &projection.Stack{NU: st.NU, NP: st.NP, NV: st.NV, Data: append([]float32(nil), st.Data...)}
	fdk, err := NewFilter(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdk.FilterRows(raw.Data, raw.NV*raw.NP, func(i int) int { return i / raw.NP }, 2); err != nil {
		t.Fatal(err)
	}
	dev := device.New("uw", 0, 2)
	if err := backproject.Batch(dev, raw, KernelMatrices(sys, 0, sys.NP), unweighted); err != nil {
		t.Fatal(err)
	}

	wStats, _ := volume.Compare(truth, weighted.V)
	uStats, _ := volume.Compare(truth, unweighted)
	if wStats.RMSE >= uStats.RMSE {
		t.Fatalf("Parker weighting did not help: weighted RMSE %g vs unweighted %g", wStats.RMSE, uStats.RMSE)
	}
	if uStats.RMSE < 1.25*wStats.RMSE {
		t.Fatalf("unweighted short scan suspiciously good: %g vs %g", uStats.RMSE, wStats.RMSE)
	}
}
