package core

import (
	"testing"

	"distfdk/internal/device"
	"distfdk/internal/projection"
)

func TestReconstructZWindowMatchesFullWindow(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	// Full reconstruction reference via the standard driver.
	plan, _ := NewPlan(sys, 1, 1, 4)
	full, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: plan, Source: src, Device: device.New("full", 0, 2), Sink: full,
	}); err != nil {
		t.Fatal(err)
	}

	for _, win := range []struct{ z0, nz int }{{0, 6}, {9, 7}, {sys.NZ - 5, 5}, {0, sys.NZ}} {
		roi, rep, err := ReconstructZWindow(ZWindowOptions{
			Sys: sys, Source: src, Device: device.New("roi", 0, 2),
			Z0: win.z0, NZ: win.nz,
		})
		if err != nil {
			t.Fatalf("window %+v: %v", win, err)
		}
		if rep.Slabs == 0 {
			t.Fatalf("window %+v: no slabs processed", win)
		}
		if roi.Z0 != win.z0 || roi.NZ != win.nz {
			t.Fatalf("window %+v: got slab %s", win, roi.ShapeString())
		}
		for k := 0; k < win.nz; k++ {
			got := roi.Slice(k)
			want := full.V.Slice(win.z0 + k)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("window %+v slice %d voxel %d: %g != %g", win, k, i, got[i], want[i])
				}
			}
		}
	}
}

// The ROI must load only its own detector rows, not the whole input.
func TestReconstructZWindowLoadsOnlyItsRows(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	dev := device.New("roi", 0, 2)
	_, rep, err := ReconstructZWindow(ZWindowOptions{
		Sys: sys, Source: src, Device: dev, Z0: 10, NZ: 4, SlabSlices: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := sys.ComputeAB(10, 14)
	rowBytes := int64(sys.NU) * int64(sys.NP) * 4
	if got, bound := rep.Ledger.H2DBytes, rowBytes*int64(rows.Len()); got > bound {
		t.Fatalf("ROI loaded %d bytes, bound %d (its ComputeAB rows)", got, bound)
	}
	if got, full := rep.Ledger.H2DBytes, st.Bytes(); got >= full {
		t.Fatalf("ROI loaded the whole input (%d of %d bytes)", got, full)
	}
}

func TestReconstructZWindowValidation(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	dev := device.New("roi", 0, 1)
	cases := []ZWindowOptions{
		{Sys: nil, Source: src, Device: dev, Z0: 0, NZ: 4},
		{Sys: sys, Source: nil, Device: dev, Z0: 0, NZ: 4},
		{Sys: sys, Source: src, Device: nil, Z0: 0, NZ: 4},
		{Sys: sys, Source: src, Device: dev, Z0: -1, NZ: 4},
		{Sys: sys, Source: src, Device: dev, Z0: 0, NZ: 0},
		{Sys: sys, Source: src, Device: dev, Z0: sys.NZ - 2, NZ: 4},
	}
	for i, opts := range cases {
		if _, _, err := ReconstructZWindow(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
