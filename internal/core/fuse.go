package core

import (
	"fmt"
	"sync"

	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/projection"
)

// FusionMode selects whether the filter→back-project handoff is fused:
// instead of weighting and ramp-filtering the loaded stack in place and
// then copying it row by row into the projection ring, the fused path
// filters each (row, projection) straight into its ring slot
// (ProjRing.FillRows + FDK.FilterRowInto), eliminating the intermediate
// host-stack write and the upload memcpy. The fused arithmetic is
// bit-identical to the unfused sequence — FilterRowInto rounds the
// redundancy product to float32 before the cosine weight exactly as
// ApplyRow-then-FilterRow does — so the mode never changes the volume,
// only the traffic.
type FusionMode int

const (
	// FusionAuto fuses wherever the handoff is already sequential: the
	// serial (DisablePipeline) driver, the elastic driver's dedicated
	// upload stage, and the distributed per-rank batch loop. The
	// non-elastic *pipelined* single-device path stays unfused: there the
	// filter stage overlaps the previous batch's back-projection, and all
	// ring mutation belongs to the back-project stage — fusing would
	// serialise the filter work behind the kernel (and filtering from any
	// other stage would race the kernel's ring reads).
	FusionAuto FusionMode = iota
	// FusionOn forces fusion in every driver path. Ring mutation still
	// happens only in the stage that owns it, so this is race-free even
	// on the non-elastic pipelined path — it just forfeits that path's
	// filter/back-project overlap in exchange for the saved pass.
	FusionOn
	// FusionOff always takes the unfused ApplyRow → FilterRows →
	// LoadRows sequence.
	FusionOff
)

// ParseFusionMode maps the CLI spelling to a FusionMode.
func ParseFusionMode(s string) (FusionMode, error) {
	switch s {
	case "", "auto":
		return FusionAuto, nil
	case "on":
		return FusionOn, nil
	case "off":
		return FusionOff, nil
	}
	return 0, fmt.Errorf("core: unknown fusion mode %q (auto, on, off)", s)
}

func (m FusionMode) String() string {
	switch m {
	case FusionOn:
		return "on"
	case FusionOff:
		return "off"
	}
	return "auto"
}

// fuseUpload admits st's rows to the ring, producing each slot by
// filtering the raw stack row directly into it: Parker redundancy weights
// (nil for a full scan) and the FDK cosine/ramp filter are applied by
// FilterRowInto on the way. The (row, projection) fills run on `workers`
// goroutines with pooled FFT scratch. st must hold *unfiltered* data; its
// projection window must match the ring's.
func fuseUpload(ring *device.ProjRing, st *projection.Stack, fdk *filter.FDK, pk *filter.Parker, workers int) error {
	if st == nil {
		return nil
	}
	pool := sync.Pool{New: func() any { return fdk.NewScratch() }}
	return ring.FillRows(st.Rows(), workers, func(v, p int, dst []float32) error {
		row, err := st.Row(v, p)
		if err != nil {
			return err
		}
		var pw []float32
		if pk != nil {
			if pw, err = pk.RowWeights(st.P0 + p); err != nil {
				return err
			}
		}
		s := pool.Get().(*filter.Scratch)
		defer pool.Put(s)
		return fdk.FilterRowInto(dst, row, v, pw, s)
	})
}
