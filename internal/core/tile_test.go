package core

import (
	"testing"

	"distfdk/internal/device"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

func TestReconstructXYTileMatchesFullRegion(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	// Full reference.
	plan, _ := NewPlan(sys, 1, 1, 4)
	full, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: plan, Source: src, Device: device.New("full", 0, 2), Sink: full,
	}); err != nil {
		t.Fatal(err)
	}

	tiles := []struct{ i0, ni, j0, nj, k0, nk int }{
		{8, 8, 8, 8, 6, 10},               // central tile
		{0, 6, 0, 6, 0, 8},                // corner tile
		{16, 8, 4, 10, 12, 12},            // off-centre tile
		{0, sys.NX, 0, sys.NY, 0, sys.NZ}, // degenerate: the whole volume
	}
	for _, tc := range tiles {
		tile, rep, err := ReconstructXYTile(XYTileOptions{
			Sys: sys, Source: src, Device: device.New("tile", 0, 2),
			I0: tc.i0, NI: tc.ni, J0: tc.j0, NJ: tc.nj, K0: tc.k0, NK: tc.nk,
		})
		if err != nil {
			t.Fatalf("tile %+v: %v", tc, err)
		}
		want, err := full.V.SubVolume(tc.i0, tc.j0, tc.k0, tc.ni, tc.nj, tc.nk)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := volume.Compare(want, tile)
		if err != nil {
			t.Fatal(err)
		}
		// Shifted float32 matrices reassociate a few ulps; the images
		// must still agree to ~1e-5 of their ~1.0 dynamic range.
		if stats.RMSE > 2e-5 || stats.MaxAbs > 5e-4 {
			t.Fatalf("tile %+v differs from full region: %+v", tc, stats)
		}
		if rep.InputBytes <= 0 || rep.InputBytes > rep.FullInputBytes {
			t.Fatalf("tile %+v input accounting wrong: %+v", tc, rep)
		}
	}
}

// The 3-D decomposition's payoff: a small central tile consumes a small
// fraction of the input.
func TestReconstructXYTileInputShrinks(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	_, rep, err := ReconstructXYTile(XYTileOptions{
		Sys: sys, Source: src, Device: device.New("tile", 0, 2),
		I0: sys.NX/2 - 3, NI: 6, J0: sys.NY/2 - 3, NJ: 6, K0: sys.NZ/2 - 3, NK: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(rep.InputBytes) / float64(rep.FullInputBytes); frac > 0.5 {
		t.Fatalf("central 6³ tile consumed %.0f%% of the input", frac*100)
	}
}

func TestReconstructXYTileValidation(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	dev := device.New("tile", 0, 1)
	bad := []XYTileOptions{
		{Sys: nil, Source: src, Device: dev, NI: 2, NJ: 2, NK: 2},
		{Sys: sys, Source: nil, Device: dev, NI: 2, NJ: 2, NK: 2},
		{Sys: sys, Source: src, Device: nil, NI: 2, NJ: 2, NK: 2},
		{Sys: sys, Source: src, Device: dev, I0: -1, NI: 2, NJ: 2, NK: 2},
		{Sys: sys, Source: src, Device: dev, NI: 2, NJ: 2, NK: 0},
		{Sys: sys, Source: src, Device: dev, I0: sys.NX - 1, NI: 4, NJ: 2, NK: 2},
	}
	for i, opts := range bad {
		if _, _, err := ReconstructXYTile(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// A too-small device budget is reported.
	tiny := device.New("tiny", 16, 1)
	if _, _, err := ReconstructXYTile(XYTileOptions{
		Sys: sys, Source: src, Device: tiny, NI: 4, NJ: 4, NK: 4,
	}); err == nil {
		t.Error("expected out-of-memory error")
	}
}
