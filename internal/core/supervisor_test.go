package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distfdk/internal/fault"
	"distfdk/internal/projection"
	"distfdk/internal/storage"
	"distfdk/internal/telemetry"
)

// float32Bytes views a volume's samples as raw bytes for bit-identity
// comparison without going through a file.
func float32Bytes(data []float32) []byte {
	out := make([]byte, 0, len(data)*4)
	for _, v := range data {
		bits := math.Float32bits(v)
		out = append(out, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	return out
}

// ShrinkPlan's contract: Nr and the slab layout are pinned, the largest
// qualifying group count wins, and an impossible shrink is the typed
// ErrWorldTooSmall.
func TestShrinkPlanPreservesLayoutAndNr(t *testing.T) {
	sys := testSystem()
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Losing one of four ranks: only a whole group can go.
	q, err := ShrinkPlan(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.NGroups != 1 || q.NRanksPerGroup != 2 {
		t.Fatalf("shrink 4→3 gave %s, want Ng=1 Nr=2", q)
	}
	if q.Fingerprint() != p.Fingerprint() {
		t.Fatalf("shrink changed the fingerprint:\n  %s\n  %s", p.Fingerprint(), q.Fingerprint())
	}
	if fmt.Sprint(q.SlabLayout()) != fmt.Sprint(p.SlabLayout()) {
		t.Fatalf("shrink changed the slab layout:\n  %v\n  %v", p.SlabLayout(), q.SlabLayout())
	}

	// Enough survivors: the plan is returned unchanged.
	if same, err := ShrinkPlan(p, 4); err != nil || same != p {
		t.Fatalf("ShrinkPlan(4) = %v, %v; want the original plan", same, err)
	}

	// Fewer survivors than one group: typed refusal.
	_, err = ShrinkPlan(p, 1)
	if err == nil || !errors.Is(err, ErrWorldTooSmall) {
		t.Fatalf("ShrinkPlan(1) = %v, want ErrWorldTooSmall", err)
	}
	var se *ShrinkError
	if !errors.As(err, &se) || se.Survivors != 1 || se.NRanksPerGroup != 2 {
		t.Fatalf("ShrinkError coordinates wrong: %+v", se)
	}
}

// The headline guarantee of the supervisor (ISSUE 5 acceptance): kill any
// single rank at any batch boundary and the supervised run completes
// without operator action, bit-identical to the fault-free volume. The
// injector schedule is seeded per cell, so every cell replays.
func TestSupervisedKillMatrixBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free reference volume.
	ref, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: ref}); err != nil {
		t.Fatal(err)
	}
	want := float32Bytes(ref.V.Data)

	for rank := 0; rank < p.Ranks(); rank++ {
		for batch := 0; batch < p.BatchCount; batch++ {
			rank, batch := rank, batch
			t.Run(fmt.Sprintf("kill-rank%d-batch%d", rank, batch), func(t *testing.T) {
				t.Parallel()
				in := fault.NewInjector(int64(1000 + rank*10 + batch))
				in.ScheduleKill(rank, batch)
				sink, err := NewVolumeSink(sys)
				if err != nil {
					t.Fatal(err)
				}
				journal := filepath.Join(t.TempDir(), "vol.journal")
				run := telemetry.NewRun(p.Ranks())
				rep, err := Supervise(SuperviseOptions{
					Cluster: ClusterOptions{
						Plan: p, Source: src, Output: sink,
						FaultInjector:      in,
						CollectiveDeadline: 5 * time.Second,
						Telemetry:          run,
					},
					OpenCheckpoint: func(fp string) (CheckpointLog, error) {
						return storage.OpenJournal(journal, fp)
					},
					MaxRestarts:    2,
					RestartBackoff: time.Millisecond,
				})
				if err != nil {
					t.Fatalf("supervised run did not recover: %v\n%s", err, rep)
				}
				if in.PendingKills() != 0 {
					t.Fatal("scheduled kill never fired — the cell tested nothing")
				}
				if rep.Restarts < 1 || len(rep.Attempts) != rep.Restarts+1 {
					t.Fatalf("restart accounting wrong: %s", rep)
				}
				if rep.Plan.Ranks() >= p.Ranks() {
					t.Fatalf("world did not shrink: finished on %s", rep.Plan)
				}
				if rep.Final == nil || rep.Final.Restarts != rep.Restarts {
					t.Fatalf("final ClusterReport missing recovery fields: %+v", rep.Final)
				}
				if !strings.Contains(rep.Final.String(), "recovery:") {
					t.Fatal("ClusterReport.String() must surface the recovery line")
				}
				if got := float32Bytes(sink.V.Data); !bytes.Equal(got, want) {
					t.Fatal("recovered volume is not bit-identical to the fault-free run")
				}
				// Telemetry reconciliation: the shared registry counts the
				// restarts; skipped batches show up in the skip counter,
				// never in core.batches.
				shared := run.Shared()
				if shared.Counter("supervise.restarts").Value() != int64(rep.Restarts) {
					t.Fatal("supervise.restarts counter does not match the report")
				}
				var skippedCounter int64
				for _, s := range rep.Final.Telemetry {
					if s.Rank >= 0 {
						skippedCounter += s.Counters["core.batches_skipped"]
					}
				}
				var skippedReport int
				for _, n := range rep.Final.BatchesSkipped {
					skippedReport += n
				}
				if skippedCounter != int64(skippedReport) {
					t.Fatalf("core.batches_skipped=%d, BatchesSkipped total=%d", skippedCounter, skippedReport)
				}
			})
		}
	}
}

// Two ranks dying at the same boundary shrink the world by a whole group
// in one restart and still recover bit-identically.
func TestSuperviseDoubleLossSameBoundary(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: ref}); err != nil {
		t.Fatal(err)
	}

	in := fault.NewInjector(7)
	in.ScheduleKill(0, 1)
	in.ScheduleKill(1, 1)
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "vol.journal")
	rep, err := Supervise(SuperviseOptions{
		Cluster: ClusterOptions{
			Plan: p, Source: src, Output: sink,
			FaultInjector:      in,
			CollectiveDeadline: 5 * time.Second,
		},
		OpenCheckpoint: func(fp string) (CheckpointLog, error) {
			return storage.OpenJournal(journal, fp)
		},
		MaxRestarts:    3,
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("double loss did not recover: %v\n%s", err, rep)
	}
	if rep.TotalLost < 1 {
		t.Fatalf("no loss recorded: %s", rep)
	}
	if !bytes.Equal(float32Bytes(sink.V.Data), float32Bytes(ref.V.Data)) {
		t.Fatal("recovered volume is not bit-identical after a double loss")
	}
}

// When the survivors cannot host the plan (fewer than one full group),
// the supervisor surfaces the typed ErrWorldTooSmall instead of looping.
func TestSuperviseWorldTooSmall(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(11)
	// Attempt 0 (Ng=2 Nr=2 Nc=2): kill rank 0 at batch 0 → shrink to one
	// group of 2 ranks, which re-plans to Nc=4. Batch 2 exists only in
	// that shrunk plan, so the second kill fires on attempt 1 and leaves
	// a single survivor — less than one full group.
	in.ScheduleKill(0, 0)
	in.ScheduleKill(1, 2)
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Supervise(SuperviseOptions{
		Cluster: ClusterOptions{
			Plan: p, Source: src, Output: sink,
			FaultInjector:      in,
			CollectiveDeadline: 5 * time.Second,
		},
		MaxRestarts:    4,
		RestartBackoff: time.Millisecond,
	})
	if err == nil || !errors.Is(err, ErrWorldTooSmall) {
		t.Fatalf("err = %v, want ErrWorldTooSmall", err)
	}
}

// A failure that recurs on every attempt exhausts the budget and surfaces
// the typed ErrRestartBudget wrapping the last attempt's error.
func TestSuperviseRestartBudget(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank 0 load fails transiently, on every attempt, with no retry
	// policy to absorb it: recoverable each time (so the supervisor does
	// relaunch) but never fixed. With Nr=1 no peer blocks on the failing
	// rank, so there is no loss to attribute and no world shrink — just a
	// budget burning down.
	in := fault.NewInjector(13,
		fault.Rule{Op: fault.OpLoad, Rank: 0, Nth: 1, Count: fault.Every, Class: fault.Transient})
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Supervise(SuperviseOptions{
		Cluster: ClusterOptions{
			Plan: p, Source: src, Output: sink,
			FaultInjector:      in,
			CollectiveDeadline: 5 * time.Second,
		},
		MaxRestarts:    1,
		RestartBackoff: time.Millisecond,
	})
	if err == nil || !errors.Is(err, ErrRestartBudget) {
		t.Fatalf("err = %v, want ErrRestartBudget", err)
	}
	var be *RestartBudgetError
	if !errors.As(err, &be) || be.Restarts != 1 {
		t.Fatalf("budget error wrong: %+v", be)
	}
	if rep.Restarts != 1 || len(rep.Attempts) != 2 {
		t.Fatalf("attempt accounting wrong: %s", rep)
	}
}

// A permanent failure with no rank loss must not be retried: restarting
// cannot change a deterministic abort.
func TestSuperviseDoesNotRetryUnrecoverable(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A permanent store failure on a 1-rank group: nobody observes a
	// teardown (no collectives with Nr=1), the error classifies
	// permanent, and the supervisor must surface it on the first attempt.
	in := fault.NewInjector(17,
		fault.Rule{Op: fault.OpStore, Rank: 0, Nth: 1, Count: fault.Every, Class: fault.Permanent})
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Supervise(SuperviseOptions{
		Cluster: ClusterOptions{
			Plan: p, Source: src, Output: sink,
			FaultInjector:      in,
			CollectiveDeadline: 5 * time.Second,
		},
		MaxRestarts:    3,
		RestartBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("permanent store failure must fail the supervised run")
	}
	if errors.Is(err, ErrRestartBudget) {
		t.Fatalf("unrecoverable failure burned the restart budget: %v", err)
	}
	if rep != nil && len(rep.Attempts) > 1 {
		t.Fatalf("unrecoverable failure was retried %d times", len(rep.Attempts)-1)
	}
}

// Supervise + OpenCheckpoint against a journal stamped by a different
// plan: the typed mismatch error must surface through the supervisor.
func TestSuperviseJournalPlanMismatch(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	journal := filepath.Join(t.TempDir(), "vol.journal")

	// Stamp the journal with a 3-batch plan...
	other, err := NewPlan(sys, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	j, err := storage.OpenJournal(journal, other.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// ...then supervise a 2-batch plan against it.
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() == other.Fingerprint() {
		t.Fatal("test setup: plans must have different fingerprints")
	}
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Supervise(SuperviseOptions{
		Cluster: ClusterOptions{Plan: p, Source: src, Output: sink},
		OpenCheckpoint: func(fp string) (CheckpointLog, error) {
			return storage.OpenJournal(journal, fp)
		},
	})
	if err == nil || !errors.Is(err, storage.ErrPlanMismatch) {
		t.Fatalf("err = %v, want ErrPlanMismatch", err)
	}
}

// A resumed (unsupervised) run reports its skips: BatchesSkipped in the
// report, core.batches_skipped in telemetry, and "+skipped" in String(),
// while BatchesDone keeps reconciling with core.batches.
func TestClusterReportSkippedBatches(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "vol.journal")
	j, err := storage.OpenJournal(journal, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: sink, Checkpoint: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Second run over the now-complete journal: everything skips.
	j2, err := storage.OpenJournal(journal, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	run := telemetry.NewRun(p.Ranks())
	rep, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: sink, Checkpoint: j2, Telemetry: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p.Ranks(); r++ {
		if rep.BatchesDone[r] != 0 {
			t.Fatalf("rank %d executed %d batches on a complete journal", r, rep.BatchesDone[r])
		}
		if rep.BatchesSkipped[r] != p.BatchCount {
			t.Fatalf("rank %d skipped %d batches, want %d", r, rep.BatchesSkipped[r], p.BatchCount)
		}
		s := run.Rank(r).Snapshot()
		if s.Counters["core.batches"] != 0 {
			t.Fatalf("rank %d core.batches=%d on a fully skipped run", r, s.Counters["core.batches"])
		}
		if s.Counters["core.batches_skipped"] != int64(rep.BatchesSkipped[r]) {
			t.Fatalf("rank %d core.batches_skipped=%d, BatchesSkipped=%d",
				r, s.Counters["core.batches_skipped"], rep.BatchesSkipped[r])
		}
	}
	if !strings.Contains(rep.String(), "skipped") {
		t.Fatalf("String() must surface skipped batches:\n%s", rep)
	}
}
