package core

import (
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/projection"
)

// NewParker builds the short-scan redundancy weights for a system, or
// returns nil for a full 360° scan where no weighting applies. The weight
// table is indexed by global projection index, so every rank can share it
// regardless of its Np window.
func NewParker(sys *geometry.System) (*filter.Parker, error) {
	if !sys.IsShortScan() {
		return nil, nil
	}
	angles := make([]float64, sys.NP)
	for p := range angles {
		angles[p] = sys.Angle(p)
	}
	return filter.NewParker(sys.NU, sys.DU, sys.DSD, sys.SigmaU, angles, sys.AngleStep()*float64(sys.NP))
}

// applyParker weights a freshly loaded stack's rows by their global
// projection index. A nil Parker is a no-op (full scan).
func applyParker(pk *filter.Parker, st *projection.Stack) error {
	if pk == nil || st == nil {
		return nil
	}
	count := st.NV * st.NP
	return pk.ApplyRows(st.Data, count, func(i int) int { return st.P0 + i%st.NP })
}
