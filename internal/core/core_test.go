package core

import (
	"math"
	"testing"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/forward"
	"distfdk/internal/geometry"
	"distfdk/internal/phantom"
	"distfdk/internal/pipeline"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

func testSystem() *geometry.System {
	return &geometry.System{
		DSO: 250, DSD: 350,
		NU: 48, NV: 40, DU: 0.5, DV: 0.5,
		NP: 32,
		NX: 24, NY: 24, NZ: 24, DX: 0.5, DY: 0.5, DZ: 0.5,
	}
}

const fovScale = 5.0

func sheppStack(t testing.TB, sys *geometry.System) *projection.Stack {
	t.Helper()
	st, err := forward.Project(sys, phantom.SheppLogan(), fovScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// reference reconstructs monolithically: filter every row, then one Batch
// kernel call over the full volume.
func reference(t testing.TB, sys *geometry.System, st *projection.Stack, w filter.Window) *volume.Volume {
	t.Helper()
	st = &projection.Stack{NU: st.NU, NP: st.NP, NV: st.NV, Data: append([]float32(nil), st.Data...)}
	fdk, err := NewFilter(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	vOf := func(i int) int { return i / st.NP }
	if err := fdk.FilterRows(st.Data, st.NV*st.NP, vOf, 1); err != nil {
		t.Fatal(err)
	}
	vol, _ := volume.New(sys.NX, sys.NY, sys.NZ)
	dev := device.New("ref", 0, 2)
	if err := backproject.Batch(dev, st, KernelMatrices(sys, 0, sys.NP), vol); err != nil {
		t.Fatal(err)
	}
	return vol
}

func TestNewPlanValidation(t *testing.T) {
	sys := testSystem()
	if _, err := NewPlan(sys, 0, 1, 8); err == nil {
		t.Error("expected Ng error")
	}
	if _, err := NewPlan(sys, 1, 0, 8); err == nil {
		t.Error("expected Nr error")
	}
	if _, err := NewPlan(sys, 1, 5, 8); err == nil {
		t.Error("expected NP divisibility error")
	}
	if _, err := NewPlan(sys, 100, 1, 8); err == nil {
		t.Error("expected Ng>NZ error")
	}
	bad := *sys
	bad.DSO = 0
	if _, err := NewPlan(&bad, 1, 1, 8); err == nil {
		t.Error("expected geometry error")
	}
	p, err := NewPlan(sys, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchCount != DefaultBatchCount {
		t.Fatalf("default Nc = %d, want %d", p.BatchCount, DefaultBatchCount)
	}
	if p.Ranks() != 8 {
		t.Fatalf("Ranks = %d", p.Ranks())
	}
}

// Slabs must partition [0, NZ) exactly: disjoint, ordered, complete.
func TestPlanSlabsPartitionVolume(t *testing.T) {
	for _, cfg := range []struct{ ng, nc, nz int }{{1, 8, 24}, {2, 4, 24}, {3, 3, 25}, {4, 8, 23}} {
		sys := testSystem()
		sys.NZ = cfg.nz
		p, err := NewPlan(sys, cfg.ng, 1, cfg.nc)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]int, sys.NZ)
		for g := 0; g < cfg.ng; g++ {
			for c := 0; c < cfg.nc; c++ {
				z0, nz := p.SlabZ(g, c)
				for z := z0; z < z0+nz; z++ {
					covered[z]++
				}
				if nz > 0 {
					if rows := p.SlabRows(g, c); rows.IsEmpty() {
						t.Fatalf("cfg %v: non-empty slab (%d,%d) has empty rows", cfg, g, c)
					}
					if p.RingDepth(g) < p.SlabRows(g, c).Len() {
						t.Fatalf("cfg %v: ring depth too small", cfg)
					}
				}
			}
		}
		for z, n := range covered {
			if n != 1 {
				t.Fatalf("cfg %v: slice %d covered %d times", cfg, z, n)
			}
		}
	}
}

func TestPlanProjWindows(t *testing.T) {
	p, _ := NewPlan(testSystem(), 2, 4, 4)
	seen := make([]int, p.Sys.NP)
	for r := 0; r < 4; r++ {
		lo, hi := p.ProjWindow(r)
		if hi-lo != p.Sys.NP/4 {
			t.Fatalf("window %d size %d", r, hi-lo)
		}
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("projection %d covered %d times", i, n)
		}
	}
	if p.GroupOf(5) != 1 || p.RankInGroup(5) != 1 {
		t.Fatalf("grouping wrong: %d/%d", p.GroupOf(5), p.RankInGroup(5))
	}
}

func TestPlanInputElements(t *testing.T) {
	p, _ := NewPlan(testSystem(), 1, 2, 8)
	// The rank loads each row of the union range exactly once.
	union := geometry.RowRange{}
	for c := 0; c < p.BatchCount; c++ {
		union = union.Union(p.SlabRows(0, c))
	}
	want := int64(p.Sys.NU) * int64(p.Sys.NP/2) * int64(union.Len())
	if got := p.InputElements(0); got != want {
		t.Fatalf("InputElements = %d, want %d", got, want)
	}
}

func TestReconstructSingleMatchesMonolithic(t *testing.T) {
	sys := testSystem()
	sys.SigmaV = 0.25
	st := sheppStack(t, sys)
	want := reference(t, sys, st, filter.RamLak)

	p, err := NewPlan(sys, 1, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewVolumeSink(sys)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New("test", 0, 2)
	rep, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: &projection.MemorySource{Full: st},
		Device: dev, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slabs != 6 {
		t.Fatalf("processed %d slabs, want 6", rep.Slabs)
	}
	for i := range want.Data {
		if want.Data[i] != sink.V.Data[i] {
			t.Fatalf("voxel %d: streaming %g != monolithic %g", i, sink.V.Data[i], want.Data[i])
		}
	}
	// I/O property: every detector row of the union range crossed the
	// link exactly once.
	if rep.Ledger.H2DBytes != 4*p.InputElements(0) {
		t.Fatalf("H2D %d bytes, want %d", rep.Ledger.H2DBytes, 4*p.InputElements(0))
	}
}

func TestReconstructSinglePipelineMatchesSerial(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	run := func(disable bool) *volume.Volume {
		p, _ := NewPlan(sys, 1, 1, 4)
		sink, _ := NewVolumeSink(sys)
		tracer := pipeline.NewTracer()
		_, err := ReconstructSingle(ReconOptions{
			Plan: p, Source: src, Device: device.New("t", 0, 2),
			Sink: sink, Tracer: tracer, DisablePipeline: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sink.V
	}
	a, b := run(false), run(true)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("voxel %d differs between pipelined and serial", i)
		}
	}
}

// Out-of-core behaviour: with a device too small for the whole problem the
// reconstruction still works when the plan is batched finely enough, and
// the ring+slab allocations respect the budget.
func TestReconstructSingleOutOfCore(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	want := reference(t, sys, st, filter.RamLak)

	fullBytes := 4 * int64(sys.NX) * int64(sys.NY) * int64(sys.NZ)
	stackBytes := st.Bytes()
	// Budget well below (volume + projections): only streaming fits.
	budget := (fullBytes + stackBytes) / 3

	p, _ := NewPlan(sys, 1, 1, 8)
	sink, _ := NewVolumeSink(sys)
	dev := device.New("small", budget, 2)
	if _, err := ReconstructSingle(ReconOptions{Plan: p, Source: src, Device: dev, Sink: sink}); err != nil {
		t.Fatalf("out-of-core reconstruction failed under budget %d: %v", budget, err)
	}
	stats, _ := volume.Compare(want, sink.V)
	if stats.MaxAbs != 0 {
		t.Fatalf("out-of-core result differs: %+v", stats)
	}
	if dev.Allocated() != 0 {
		t.Fatalf("device memory leaked: %d", dev.Allocated())
	}
}

func TestReconstructSingleOptionValidation(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p1, _ := NewPlan(sys, 1, 1, 4)
	sink, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{Plan: p1, Source: src, Device: device.New("d", 0, 1)}); err == nil {
		t.Error("expected missing-sink error")
	}
	p2, _ := NewPlan(sys, 2, 2, 4)
	if _, err := ReconstructSingle(ReconOptions{Plan: p2, Source: src, Device: device.New("d", 0, 1), Sink: sink}); err == nil {
		t.Error("expected multi-rank plan error")
	}
	other := *sys
	other.NP = 16
	pBad, _ := NewPlan(&other, 1, 1, 4)
	if _, err := ReconstructSingle(ReconOptions{Plan: pBad, Source: src, Device: device.New("d", 0, 1), Sink: sink}); err == nil {
		t.Error("expected source mismatch error")
	}
}

func TestRunDistributedMatchesSingle(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	want := reference(t, sys, st, filter.RamLak)

	for _, cfg := range []struct{ ng, nr int }{{1, 4}, {2, 2}, {4, 1}, {2, 4}} {
		p, err := NewPlan(sys, cfg.ng, cfg.nr, 4)
		if err != nil {
			t.Fatal(err)
		}
		sink, _ := NewVolumeSink(sys)
		rep, err := RunDistributed(ClusterOptions{
			Plan: p, Source: src, Output: sink,
		})
		if err != nil {
			t.Fatalf("cfg %v: %v", cfg, err)
		}
		stats, _ := volume.Compare(want, sink.V)
		// float32 tree-reduction reassociation only.
		if stats.RMSE > 1e-5 {
			t.Fatalf("cfg %v: RMSE %g vs monolithic", cfg, stats.RMSE)
		}
		// Segmented reduction: each group's binomial trees move
		// (Nr−1)·(group volume) = (Nr−1)·Vol/Ng bytes; across the Ng
		// groups the total is (Nr−1)·Vol — independent of Ng, whereas
		// a global reduce would move (Ng·Nr−1)·Vol.
		volBytes := 4 * int64(sys.NX) * int64(sys.NY) * int64(sys.NZ)
		wantReduce := int64(cfg.nr-1) * volBytes
		if got := rep.TotalReduceBytes(); got != wantReduce {
			t.Fatalf("cfg %v: reduce bytes %d, want %d", cfg, got, wantReduce)
		}
	}
}

func TestRunDistributedHierarchicalReduce(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, _ := NewPlan(sys, 1, 4, 4)
	flat, _ := NewVolumeSink(sys)
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: flat}); err != nil {
		t.Fatal(err)
	}
	hier, _ := NewVolumeSink(sys)
	if _, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: hier,
		Hierarchical: true, RanksPerNode: 2,
	}); err != nil {
		t.Fatal(err)
	}
	stats, _ := volume.Compare(flat.V, hier.V)
	if stats.RMSE > 1e-5 {
		t.Fatalf("hierarchical result differs: %+v", stats)
	}
	// Misconfiguration is rejected.
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: hier, Hierarchical: true}); err == nil {
		t.Error("expected RanksPerNode error")
	}
}

func TestRunBatchBaselineMatchesAndIsRedundant(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	want := reference(t, sys, st, filter.RamLak)

	const ranks = 4
	const chunks = 4
	sink, _ := NewVolumeSink(sys)
	rep, err := RunBatchBaseline(BaselineOptions{
		Sys: sys, Ranks: ranks, ChunkCount: chunks, Source: src, Output: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := volume.Compare(want, sink.V)
	if stats.RMSE > 1e-5 {
		t.Fatalf("baseline RMSE %g", stats.RMSE)
	}
	// The baseline re-ships its projection share once per chunk.
	shareBytes := int64(sys.NU) * int64(sys.NP/ranks) * int64(sys.NV) * 4
	if got := rep.Ledgers[0].H2DBytes; got != chunks*shareBytes+rep.Ledgers[0].D2HBytes*0 {
		if got != int64(chunks)*shareBytes {
			t.Fatalf("baseline rank 0 H2D %d, want %d (chunk-redundant)", got, int64(chunks)*shareBytes)
		}
	}

	// Our decomposition at the same world size ships strictly less.
	p, _ := NewPlan(sys, 2, 2, chunks)
	ourSink, _ := NewVolumeSink(sys)
	ourRep, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: ourSink})
	if err != nil {
		t.Fatal(err)
	}
	if ourRep.TotalH2DBytes() >= rep.TotalH2DBytes() {
		t.Fatalf("expected 2-D decomposition H2D (%d) < baseline (%d)",
			ourRep.TotalH2DBytes(), rep.TotalH2DBytes())
	}
	if ourRep.TotalReduceBytes() >= rep.TotalReduceBytes() {
		t.Fatalf("expected segmented reduce (%d) < global reduce (%d)",
			ourRep.TotalReduceBytes(), rep.TotalReduceBytes())
	}
}

func TestRunBatchBaselineRespectsDeviceMemory(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	sink, _ := NewVolumeSink(sys)
	shareBytes := int64(sys.NU) * int64(sys.NP) * int64(sys.NV) * 4
	volBytes := 4 * int64(sys.NX) * int64(sys.NY) * int64(sys.NZ)
	// Device that cannot hold share+volume: single-chunk baseline fails
	// (Table 5's ✗), chunked baseline succeeds.
	budget := shareBytes + volBytes/2
	_, err := RunBatchBaseline(BaselineOptions{
		Sys: sys, Ranks: 1, ChunkCount: 1, Source: src, Output: sink, DeviceMemBytes: budget,
	})
	if err == nil {
		t.Fatal("expected out-of-memory failure for monolithic baseline")
	}
	if _, err := RunBatchBaseline(BaselineOptions{
		Sys: sys, Ranks: 1, ChunkCount: 4, Source: src, Output: sink, DeviceMemBytes: budget,
	}); err != nil {
		t.Fatalf("chunked baseline should fit: %v", err)
	}
}

// End-to-end quality: FDK of the analytic Shepp–Logan projections must
// recover the phantom densities (the paper's §6.1 numerical assessment).
func TestFDKQualitySheppLogan(t *testing.T) {
	sys := testSystem()
	sys.NP = 64 // denser angular sampling for quality
	st := sheppStack(t, sys)
	p, _ := NewPlan(sys, 1, 1, 4)
	sink, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: &projection.MemorySource{Full: st},
		Device: device.New("q", 0, 2), Sink: sink, Window: filter.Hann,
	}); err != nil {
		t.Fatal(err)
	}
	truth, err := phantom.SheppLogan().Voxelize(sys, fovScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := volume.Compare(truth, sink.V)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RMSE > 0.12 {
		t.Fatalf("Shepp–Logan RMSE %g too high (means %g vs %g)", stats.RMSE, stats.MeanA, stats.MeanB)
	}
	// The mid-plane centre (inside the 0.2-density brain region, away
	// from cone artefacts) must be near truth.
	got := float64(sink.V.At(sys.NX/2, sys.NY/2, sys.NZ/2))
	if math.Abs(got-0.2) > 0.08 {
		t.Fatalf("centre density %g, want ≈0.2", got)
	}
}

// Absolute-scale validation on the simplest object: a uniform sphere must
// reconstruct to its density, confirming the Δu and Δβ/2 quadrature
// factors.
func TestFDKAbsoluteScale(t *testing.T) {
	sys := testSystem()
	sys.NP = 64
	ph := phantom.UniformSphere(0.5, 1.5)
	st, err := forward.Project(sys, ph, fovScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPlan(sys, 1, 1, 2)
	sink, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: &projection.MemorySource{Full: st},
		Device: device.New("q", 0, 2), Sink: sink,
	}); err != nil {
		t.Fatal(err)
	}
	got := float64(sink.V.At(sys.NX/2, sys.NY/2, sys.NZ/2))
	if math.Abs(got-1.5)/1.5 > 0.1 {
		t.Fatalf("sphere centre reconstructs to %g, want 1.5±10%%", got)
	}
}
