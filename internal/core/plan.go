// Package core assembles the paper's distributed FBP framework: the
// decomposition plan over groups, ranks and slab batches (Table 3,
// Equations 3 and 9–12), the single-device out-of-core pipelined
// reconstructor (Section 4.4.3, Algorithm 3), and the multi-rank grouped
// reconstruction with segmented reduction (Sections 4.4.1–4.4.2).
package core

import (
	"fmt"
	"hash/fnv"

	"distfdk/internal/geometry"
)

// Plan captures how a reconstruction is decomposed. Following Table 3:
// Ngpus = Ng·Nr ranks are divided into Ng groups of Nr ranks; each group
// produces Ns = Nz/Ng output slices in Nc batches of Nb = Ns/Nc slices;
// within a group, each rank back-projects Np/Nr projections of every batch
// and the Nr partial slabs meet in a segmented reduction.
type Plan struct {
	Sys *geometry.System
	// NGroups is Ng, the number of rank groups.
	NGroups int
	// NRanksPerGroup is Nr, the ranks (devices) per group.
	NRanksPerGroup int
	// BatchCount is Nc, the slab batches per group (the paper fixes 8).
	BatchCount int

	// derived
	slicesPerGroup int // Ns (ceil)
	slicesPerBatch int // Nb (ceil)
}

// DefaultBatchCount is the Nc the paper uses throughout its evaluation.
const DefaultBatchCount = 8

// NewPlan validates and derives a decomposition plan.
func NewPlan(sys *geometry.System, nGroups, nRanksPerGroup, batchCount int) (*Plan, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if nGroups <= 0 || nRanksPerGroup <= 0 {
		return nil, fmt.Errorf("core: Ng=%d, Nr=%d must be positive", nGroups, nRanksPerGroup)
	}
	if batchCount <= 0 {
		batchCount = DefaultBatchCount
	}
	if sys.NP%nRanksPerGroup != 0 {
		return nil, fmt.Errorf("core: NP=%d not divisible by Nr=%d", sys.NP, nRanksPerGroup)
	}
	if nGroups > sys.NZ {
		return nil, fmt.Errorf("core: Ng=%d exceeds NZ=%d slices", nGroups, sys.NZ)
	}
	p := &Plan{Sys: sys, NGroups: nGroups, NRanksPerGroup: nRanksPerGroup, BatchCount: batchCount}
	p.slicesPerGroup = ceilDiv(sys.NZ, nGroups)
	p.slicesPerBatch = ceilDiv(p.slicesPerGroup, batchCount)
	return p, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Ranks returns the world size Ngpus = Ng·Nr (Equations 9 and 11).
func (p *Plan) Ranks() int { return p.NGroups * p.NRanksPerGroup }

// SlicesPerGroup returns Ns (Equation 10, rounded up for uneven NZ).
func (p *Plan) SlicesPerGroup() int { return p.slicesPerGroup }

// SlicesPerBatch returns Nb (Equation 12 inverted: Nb = Ns/Nc).
func (p *Plan) SlicesPerBatch() int { return p.slicesPerBatch }

// GroupOf returns the group index of a world rank (ranks are grouped
// consecutively, Section 4.4.1).
func (p *Plan) GroupOf(rank int) int { return rank / p.NRanksPerGroup }

// RankInGroup returns a world rank's index within its group.
func (p *Plan) RankInGroup(rank int) int { return rank % p.NRanksPerGroup }

// ProjWindow returns the global projection window [pLo, pHi) back-projected
// by group rank r (the Np-axis split of Section 3.1.3).
func (p *Plan) ProjWindow(r int) (int, int) {
	share := p.Sys.NP / p.NRanksPerGroup
	return r * share, (r + 1) * share
}

// SlabZ returns the Z window [z0, z0+nz) of batch c in group g; nz may be
// zero for trailing batches when NZ does not divide evenly.
func (p *Plan) SlabZ(g, c int) (z0, nz int) {
	groupLo := g * p.slicesPerGroup
	groupHi := min(groupLo+p.slicesPerGroup, p.Sys.NZ)
	z0 = groupLo + c*p.slicesPerBatch
	if z0 >= groupHi {
		return groupHi, 0
	}
	nz = min(p.slicesPerBatch, groupHi-z0)
	return
}

// SlabRows returns the detector-row range (Algorithm 2) that batch c of
// group g requires; empty when the batch has no slices.
func (p *Plan) SlabRows(g, c int) geometry.RowRange {
	z0, nz := p.SlabZ(g, c)
	if nz == 0 {
		return geometry.RowRange{}
	}
	return p.Sys.ComputeAB(z0, z0+nz)
}

// RingDepth returns the projection-ring depth (in detector rows) a rank of
// group g needs: the largest slab row extent of that group's batches. This
// is the device-memory knob the paper controls via Nc — more batches mean
// thinner slabs and a shallower ring.
func (p *Plan) RingDepth(g int) int {
	h := 0
	for c := 0; c < p.BatchCount; c++ {
		if l := p.SlabRows(g, c).Len(); l > h {
			h = l
		}
	}
	return h
}

// RingDepthWindow returns the ring depth (in detector rows) a rank of
// group g needs when up to `window` consecutive batches must stay resident
// simultaneously: the largest union of any `window` consecutive batches'
// row ranges. Elastic back-projection (ReconOptions.BPWorkers > 1) keeps
// in-flight batches readable while later batches load, so it sizes the
// ring by this window instead of the single-batch RingDepth.
func (p *Plan) RingDepthWindow(g, window int) int {
	if window < 1 {
		window = 1
	}
	h := 0
	for c := 0; c < p.BatchCount; c++ {
		u := geometry.RowRange{}
		for b := max(0, c-window+1); b <= c; b++ {
			u = u.Union(p.SlabRows(g, b))
		}
		if l := u.Len(); l > h {
			h = l
		}
	}
	return h
}

// MaxRingDepth returns the ring depth sufficient for every group.
func (p *Plan) MaxRingDepth() int {
	h := 0
	for g := 0; g < p.NGroups; g++ {
		if d := p.RingDepth(g); d > h {
			h = d
		}
	}
	return h
}

// InputElements returns the total projection samples a rank of group g
// loads across all batches (Σ SizeAB/SizeBB, Equations 5 and 7): the
// measure behind the "each byte moves once" property.
func (p *Plan) InputElements(g int) int64 {
	var total int64
	prev := geometry.RowRange{}
	share := int64(p.Sys.NP / p.NRanksPerGroup)
	for c := 0; c < p.BatchCount; c++ {
		cur := p.SlabRows(g, c)
		if cur.IsEmpty() {
			continue
		}
		diff := geometry.DifferentialRows(prev, cur)
		total += int64(p.Sys.NU) * share * int64(diff.Len())
		prev = cur
	}
	return total
}

// SlabBytes returns Size_vol (Equation 15) for a full-height batch slab.
func (p *Plan) SlabBytes() int64 {
	return 4 * int64(p.Sys.NX) * int64(p.Sys.NY) * int64(p.slicesPerBatch)
}

// SlabLayout returns every non-empty batch's output window as (z0, nz)
// pairs in ascending z0 order. The layout is the world-shape-invariant
// identity of the plan's outputs: two plans over the same geometry with
// equal layouts cut the volume into the same slabs at the same file
// offsets, whatever their (Ng, Nr, Nc) shape.
func (p *Plan) SlabLayout() [][2]int {
	var out [][2]int
	for g := 0; g < p.NGroups; g++ {
		for c := 0; c < p.BatchCount; c++ {
			if z0, nz := p.SlabZ(g, c); nz > 0 {
				out = append(out, [2]int{z0, nz})
			}
		}
	}
	return out // groups ascend, batches ascend within a group ⇒ z0 ascends
}

// Fingerprint identifies everything a checkpoint journal must agree on to
// be resumable: the full acquisition/volume geometry (any parameter change
// alters voxel values, so mixing journaled slabs across geometries would
// silently corrupt the output) and the slab layout (which names the bytes
// each record covers). It deliberately excludes (Ng, Nr, Nc): a shrunk
// re-plan that preserves the layout yields the same fingerprint and may
// resume the journal — the basis of supervised shrink-and-resume.
//
// The token is space-free (storage.OpenJournal requires that) and carries
// a human-readable volume-shape prefix ahead of the hash.
func (p *Plan) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v\n", *p.Sys)
	layout := p.SlabLayout()
	for _, s := range layout {
		fmt.Fprintf(h, "%d:%d ", s[0], s[1])
	}
	return fmt.Sprintf("plan1-%dx%dx%d-s%d-%016x",
		p.Sys.NX, p.Sys.NY, p.Sys.NZ, len(layout), h.Sum64())
}

func (p *Plan) String() string {
	return fmt.Sprintf("plan{Ng=%d Nr=%d Nc=%d Nb=%d ranks=%d vol=%dx%dx%d np=%d}",
		p.NGroups, p.NRanksPerGroup, p.BatchCount, p.slicesPerBatch,
		p.Ranks(), p.Sys.NX, p.Sys.NY, p.Sys.NZ, p.Sys.NP)
}
