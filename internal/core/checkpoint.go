package core

// CheckpointLog records durably stored slabs and answers whether one is
// already on disk. storage.Journal satisfies it; core depends only on
// this interface so the reconstruction layer stays free of I/O imports.
//
// Slabs are keyed by their output identity — the first slice z0 of the
// slab's Z window — not by the (group, batch) coordinates of whichever
// world shape produced them. z0 names the bytes in the output file, so a
// journal written by an (Ng, Nr) run can be resumed by a shrunk
// (Ng', Nr') run with the same slab layout (see Plan.Fingerprint),
// skipping exactly the slabs that are already durable. The batch argument
// of Record is the recording plan's batch ordinal, carried for debugging
// only.
//
// Resume semantics: pass a log that already holds entries (a reopened
// journal) and the plan replays skipping every recorded slab. Because
// batches are independent, the reduction order is fixed, and slabs land
// at fixed offsets, the resumed volume is bit-identical to one produced
// by an uninterrupted run.
type CheckpointLog interface {
	Done(z0 int) bool
	Record(z0, batch int) error
}

// skipBatch flows through the pipeline in place of a payload when the
// checkpoint log says the batch's slab is already durably stored: every
// stage passes it along untouched, so skipped batches neither load rows,
// mutate the ring, nor store — and crucially never advance the
// differential-load or ring-residency cursors, which track executed
// batches only.
type skipBatch struct{}

// syncer is what a sink must additionally implement for checkpointing to
// be crash-safe: the slab bytes are forced to stable storage before the
// journal entry that declares them done.
type syncer interface{ Sync() error }

// syncSink flushes the sink if it knows how.
func syncSink(s SlabSink) error {
	if sy, ok := s.(syncer); ok {
		return sy.Sync()
	}
	return nil
}
