package core

// CheckpointLog records durably stored slabs and answers whether a
// (group, batch) pair is already on disk. storage.Journal satisfies it;
// core depends only on this interface so the reconstruction layer stays
// free of I/O imports.
//
// Resume semantics: pass a log that already holds entries (a reopened
// journal) and the plan replays skipping every recorded pair. Because
// batches are independent, the reduction order is fixed, and slabs land
// at fixed offsets, the resumed volume is bit-identical to one produced
// by an uninterrupted run.
type CheckpointLog interface {
	Done(group, batch int) bool
	Record(group, batch int) error
}

// skipBatch flows through the pipeline in place of a payload when the
// checkpoint log says the batch's slab is already durably stored: every
// stage passes it along untouched, so skipped batches neither load rows,
// mutate the ring, nor store — and crucially never advance the
// differential-load or ring-residency cursors, which track executed
// batches only.
type skipBatch struct{}

// syncer is what a sink must additionally implement for checkpointing to
// be crash-safe: the slab bytes are forced to stable storage before the
// journal entry that declares them done.
type syncer interface{ Sync() error }

// syncSink flushes the sink if it knows how.
func syncSink(s SlabSink) error {
	if sy, ok := s.(syncer); ok {
		return sy.Sync()
	}
	return nil
}
