package core

import (
	"strings"
	"testing"
	"time"

	"distfdk/internal/fault"
	"distfdk/internal/projection"
	"distfdk/internal/telemetry"
)

// TestPhaseMarkerSpans pins the scenario-phase instrumentation: a
// distributed run whose injector carries a phase schedule records one
// phase.warmup/phase.inject/phase.recovery span per rank, in order and
// non-overlapping, and the injector's transition log fires each boundary
// exactly once per rank.
func TestPhaseMarkerSpans(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	p, err := NewPlan(sys, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A straggler rule scoped to the inject phase: it must fire there (and
	// only there) without ever failing an operation, so the run completes
	// while still proving the phase filter gates the rule.
	in := fault.NewInjector(5,
		fault.Rule{Op: fault.OpLoad, Rank: fault.AnyRank, Count: fault.Every,
			Delay: time.Millisecond, Phase: fault.PhaseInject})
	in.SetPhaseSchedule(fault.PhaseSchedule{WarmupBatches: 1, InjectBatches: 2})
	run := telemetry.NewRun(p.Ranks())
	sink, _ := NewVolumeSink(sys)
	_, err = RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: sink,
		FaultInjector:      in,
		CollectiveDeadline: 5 * time.Second,
		Retry:              &fault.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, Seed: 5},
		Telemetry:          run,
	})
	if err != nil {
		t.Fatalf("phase-scoped transient chaos must be absorbed: %v", err)
	}
	if in.Fired() == 0 {
		t.Fatal("inject-phase rule never fired")
	}

	perRank := map[int]int{}
	for _, tr := range in.Transitions() {
		perRank[tr.Rank]++
	}
	for r := 0; r < p.Ranks(); r++ {
		if perRank[r] != 2 {
			t.Errorf("rank %d recorded %d transitions, want 2 (warmup→inject→recovery)", r, perRank[r])
		}
	}

	for r := 0; r < p.Ranks(); r++ {
		snap := run.Rank(r).Snapshot()
		var phases []telemetry.Span
		for _, sp := range snap.Spans {
			if strings.HasPrefix(sp.Name, "phase.") {
				phases = append(phases, sp)
			}
		}
		want := []string{"phase.warmup", "phase.inject", "phase.recovery"}
		if len(phases) != len(want) {
			t.Fatalf("rank %d phase spans = %v, want %v", r, phases, want)
		}
		for i, sp := range phases {
			if sp.Name != want[i] {
				t.Errorf("rank %d phase span %d = %q, want %q", r, i, sp.Name, want[i])
			}
			if i > 0 && sp.Start < phases[i-1].End {
				t.Errorf("rank %d phase spans overlap: %v then %v", r, phases[i-1], sp)
			}
		}
	}
}
