package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"distfdk/internal/device"
	"distfdk/internal/fault"
	"distfdk/internal/mpi"
	"distfdk/internal/projection"
	"distfdk/internal/storage"
)

// nonEmptyBatches counts the (group, batch) pairs a plan actually stores.
func nonEmptyBatches(p *Plan) int {
	n := 0
	for g := 0; g < p.NGroups; g++ {
		for c := 0; c < p.BatchCount; c++ {
			if _, nz := p.SlabZ(g, c); nz > 0 {
				n++
			}
		}
	}
	return n
}

// Transient chaos matrix: seeded schedules of flaky loads, flaky stores
// and stragglers must be fully absorbed by the retry policy and
// deadline-aware collectives — same exit code, bit-identical volume.
func TestChaosMatrixTransient(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, err := NewPlan(sys, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := NewVolumeSink(sys)
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: clean}); err != nil {
		t.Fatal(err)
	}

	schedules := []struct {
		name  string
		seed  int64
		rules []fault.Rule
	}{
		{"first-load-flaky-everywhere", 1, []fault.Rule{
			{Op: fault.OpLoad, Rank: fault.AnyRank, Nth: 1, Count: 1, Class: fault.Transient},
		}},
		{"rank2-load-double-fault", 2, []fault.Rule{
			{Op: fault.OpLoad, Rank: 2, Nth: 2, Count: 2, Class: fault.Transient},
		}},
		{"leader-store-flaky", 3, []fault.Rule{
			{Op: fault.OpStore, Rank: 0, Nth: 2, Count: 1, Class: fault.Transient},
			{Op: fault.OpStore, Rank: 2, Nth: 1, Count: 1, Class: fault.Transient},
		}},
		{"straggling-sends", 4, []fault.Rule{
			{Op: fault.OpSend, Rank: 1, Nth: 2, Count: 3, Delay: 5 * time.Millisecond},
			{Op: fault.OpRecv, Rank: 3, Nth: 1, Count: 1, Delay: 5 * time.Millisecond},
		}},
		{"mixed-weather", 5, []fault.Rule{
			{Op: fault.OpLoad, Rank: 1, Nth: 1, Count: 1, Class: fault.Transient},
			{Op: fault.OpStore, Rank: 0, Nth: 1, Count: 1, Class: fault.Transient},
			{Op: fault.OpSend, Rank: 3, Nth: 1, Count: 1, Delay: 3 * time.Millisecond},
		}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			in := fault.NewInjector(sched.seed, sched.rules...)
			sink, _ := NewVolumeSink(sys)
			rep, err := RunDistributed(ClusterOptions{
				Plan: p, Source: src, Output: sink,
				FaultInjector:      in,
				CollectiveDeadline: 5 * time.Second,
				Retry: &fault.RetryPolicy{
					MaxAttempts: 4,
					BaseDelay:   200 * time.Microsecond,
					MaxDelay:    2 * time.Millisecond,
					Seed:        sched.seed,
				},
			})
			if err != nil {
				t.Fatalf("transient schedule must be absorbed, got %v", err)
			}
			if in.Fired() == 0 {
				t.Fatal("schedule injected nothing — the matrix is not testing anything")
			}
			for r := 0; r < p.Ranks(); r++ {
				if !rep.Completed[r] {
					t.Fatalf("rank %d did not complete", r)
				}
			}
			for i := range clean.V.Data {
				if sink.V.Data[i] != clean.V.Data[i] {
					t.Fatalf("voxel %d: faulted run %g != clean run %g (recovery not bit-identical)",
						i, sink.V.Data[i], clean.V.Data[i])
				}
			}
		})
	}
}

// Permanent chaos matrix: a dead rank must surface as a typed error within
// the collective deadline — never a hang, never a silent partial volume —
// with the partial report identifying the survivors, and the world's
// goroutines fully torn down.
func TestChaosMatrixPermanent(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, err := NewPlan(sys, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	baseGoroutines := runtime.NumGoroutine()

	cases := []struct {
		name     string
		seed     int64
		rules    []fault.Rule
		wantLost bool // peers must observe mpi.ErrRankLost too
	}{
		{"rank3-loads-dead", 10, []fault.Rule{
			{Op: fault.OpLoad, Rank: 3, Nth: 2, Count: fault.Every, Class: fault.Permanent},
		}, true},
		{"rank1-link-dead", 11, []fault.Rule{
			{Op: fault.OpSend, Rank: 1, Nth: 3, Count: fault.Every, Class: fault.Permanent},
		}, true},
		{"leader-store-dead", 12, []fault.Rule{
			{Op: fault.OpStore, Rank: 0, Nth: 2, Count: fault.Every, Class: fault.Permanent},
		}, false},
		{"rank2-recv-dead", 13, []fault.Rule{
			{Op: fault.OpRecv, Rank: 2, Nth: 1, Count: fault.Every, Class: fault.Permanent},
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := fault.NewInjector(tc.seed, tc.rules...)
			sink, _ := NewVolumeSink(sys)
			start := time.Now()
			rep, err := RunDistributed(ClusterOptions{
				Plan: p, Source: src, Output: sink,
				FaultInjector:      in,
				CollectiveDeadline: 250 * time.Millisecond,
				// Retry configured on purpose: permanent faults must punch
				// straight through it.
				Retry: &fault.RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, Seed: tc.seed},
			})
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("permanent fault produced a silently successful run")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error does not carry the injected fault: %v", err)
			}
			if tc.wantLost && !errors.Is(err, mpi.ErrRankLost) {
				t.Fatalf("peers of the dead rank did not observe ErrRankLost: %v", err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("teardown took %v with a 250ms collective deadline", elapsed)
			}
			if rep == nil {
				t.Fatal("partial report missing alongside the error")
			}
			completed := 0
			for _, done := range rep.Completed {
				if done {
					completed++
				}
			}
			if completed == p.Ranks() {
				t.Fatal("report claims all ranks completed despite the error")
			}
		})
	}

	// After every teardown in the matrix, the runtime must settle back to
	// its pre-matrix goroutine count: nothing may leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseGoroutines+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across the chaos matrix: %d now vs %d at start",
		runtime.NumGoroutine(), baseGoroutines)
}

// Kill-and-resume, distributed: a run killed by a dead group leader leaves
// a partial volume and a checkpoint journal on disk; reopening both and
// re-running the same plan skips the journaled batches and produces a
// final file byte-identical to an uninterrupted run's.
func TestChaosKillAndResume(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	dir := t.TempDir()

	p, err := NewPlan(sys, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference file.
	refPath := filepath.Join(dir, "ref.fbk")
	refW, err := storage.NewSlabWriter(refPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: refW}); err != nil {
		t.Fatal(err)
	}
	if err := refW.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 1: group 1's leader (world rank 2) dies permanently at its
	// second store. Group 0 keeps journaling its own batches.
	outPath := filepath.Join(dir, "vol.fbk")
	journalPath := filepath.Join(dir, "vol.journal")
	w, err := storage.NewSlabWriter(outPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	j, err := storage.OpenJournal(journalPath, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(99,
		fault.Rule{Op: fault.OpStore, Rank: 2, Nth: 2, Count: fault.Every, Class: fault.Permanent})
	rep, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: w,
		FaultInjector:      in,
		CollectiveDeadline: 250 * time.Millisecond,
		Checkpoint:         j,
	})
	if err == nil {
		t.Fatal("the kill schedule did not kill the run")
	}
	if rep == nil || rep.Completed[2] {
		t.Fatalf("rank 2 must not be reported complete: %+v", rep)
	}
	// Simulate the crash-consistent shutdown a real process gets for free
	// from the OS: partial volume stays on disk, journal is closed as-is.
	if err := w.ClosePartial(); err != nil {
		t.Fatal(err)
	}
	recorded := j.Len()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	total := nonEmptyBatches(p)
	if recorded == 0 || recorded >= total {
		t.Fatalf("journal has %d of %d batches; the kill should land strictly between", recorded, total)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatal("final output path must not exist after a killed run")
	}

	// Run 2: reopen journal and partial volume, replay the plan. Journaled
	// batches are skipped; the rest are redone fault-free.
	j2, err := storage.OpenJournal(journalPath, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != recorded {
		t.Fatalf("journal lost entries across reopen: %d vs %d", j2.Len(), recorded)
	}
	w2, err := storage.ResumeSlabWriter(outPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunDistributed(ClusterOptions{
		Plan: p, Source: src, Output: w2,
		CollectiveDeadline: 5 * time.Second,
		Checkpoint:         j2,
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	executed := 0
	for _, n := range rep2.BatchesDone {
		executed += n
	}
	// Every rank skips its group's journaled batches; Nr ranks execute
	// each remaining batch.
	if want := (total - recorded) * p.NRanksPerGroup; executed != want {
		t.Fatalf("resume executed %d rank-batches, want %d (skipping not effective)", executed, want)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Remove(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed volume is not byte-identical to the uninterrupted run")
	}
}

// Kill-and-resume, single device: ReconstructSingle honours the same
// retry + checkpoint contract as the distributed driver.
func TestReconstructSingleRetryAndResume(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}
	dir := t.TempDir()

	p, err := NewPlan(sys, 1, 1, 6)
	if err != nil {
		t.Fatal(err)
	}

	refPath := filepath.Join(dir, "ref.fbk")
	refW, err := storage.NewSlabWriter(refPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: device.New("ref", 0, 2), Sink: refW,
	}); err != nil {
		t.Fatal(err)
	}
	if err := refW.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 1: flaky loads (absorbed by the retry policy) plus a permanent
	// store failure at the fourth slab (the kill).
	outPath := filepath.Join(dir, "vol.fbk")
	journalPath := filepath.Join(dir, "vol.journal")
	w, err := storage.NewSlabWriter(outPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	j, err := storage.OpenJournal(journalPath, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(7,
		fault.Rule{Op: fault.OpLoad, Rank: 0, Nth: 2, Count: 1, Class: fault.Transient},
		fault.Rule{Op: fault.OpStore, Rank: 0, Nth: 4, Count: fault.Every, Class: fault.Permanent})
	_, err = ReconstructSingle(ReconOptions{
		Plan:       p,
		Source:     fault.Source(src, in, 0),
		Device:     device.New("chaos", 0, 2),
		Sink:       fault.Sink(w, in, 0),
		Retry:      &fault.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, Seed: 7},
		Checkpoint: j,
	})
	if err == nil {
		t.Fatal("permanent store fault did not abort the run")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("abort is not the injected fault: %v", err)
	}
	if err := w.ClosePartial(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("journal has %d batches, want the 3 stored before the kill", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 2: resume fault-free; only the missing batches run.
	j2, err := storage.OpenJournal(journalPath, p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := storage.ResumeSlabWriter(outPath, sys.NX, sys.NY, sys.NZ)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: device.New("resume", 0, 2),
		Sink: w2, Checkpoint: j2,
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if rep.Slabs != 3 {
		t.Fatalf("resume processed %d slabs, want the 3 missing ones", rep.Slabs)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Remove(); err != nil {
		t.Fatal(err)
	}

	got, _ := os.ReadFile(outPath)
	want, _ := os.ReadFile(refPath)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed single-device volume is not byte-identical to the uninterrupted run")
	}
}
