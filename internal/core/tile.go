package core

import (
	"fmt"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

// XYTileOptions configures a 3-D-decomposed reconstruction of one output
// tile: voxels i ∈ [I0, I0+NI), j ∈ [J0, J0+NJ), k ∈ [K0, K0+NK). The
// loader fetches only the detector rows the Z window needs (Algorithm 2)
// and only the detector columns the XY footprint needs
// (geometry.TileColumns) — the extension of the paper's 2-D decomposition
// to all three input axes, which its Table 2 leaves as the open cell
// (their lower bound is O(Nu) because the column axis stays whole).
type XYTileOptions struct {
	Sys    *geometry.System
	Source projection.Source
	Device *device.Device
	Window filter.Window
	I0, NI int
	J0, NJ int
	K0, NK int
	// Workers bounds the filtering parallelism.
	Workers int
}

// TileReport describes what the tile actually consumed.
type TileReport struct {
	Rows    geometry.RowRange // detector rows loaded
	Columns geometry.RowRange // detector columns loaded
	// InputBytes is the partial-projection volume fetched, vs the full
	// detector's FullInputBytes.
	InputBytes, FullInputBytes int64
}

// ReconstructXYTile reconstructs one output tile from its detector window.
// The result volume is NI×NJ×NK with Z0 = K0; its voxels match the same
// region of a full reconstruction up to float32 rounding in the shifted
// matrices (≈1e-6 relative).
func ReconstructXYTile(opts XYTileOptions) (*volume.Volume, *TileReport, error) {
	sys := opts.Sys
	if sys == nil || opts.Source == nil || opts.Device == nil {
		return nil, nil, fmt.Errorf("core: Sys, Source and Device are required")
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.I0 < 0 || opts.NI <= 0 || opts.I0+opts.NI > sys.NX ||
		opts.J0 < 0 || opts.NJ <= 0 || opts.J0+opts.NJ > sys.NY ||
		opts.K0 < 0 || opts.NK <= 0 || opts.K0+opts.NK > sys.NZ {
		return nil, nil, fmt.Errorf("core: tile (%d,%d,%d)+(%d,%d,%d) outside volume %dx%dx%d",
			opts.I0, opts.J0, opts.K0, opts.NI, opts.NJ, opts.NK, sys.NX, sys.NY, sys.NZ)
	}
	rows := sys.ComputeAB(opts.K0, opts.K0+opts.NK)
	cols := sys.TileColumns(opts.I0, opts.I0+opts.NI, opts.J0, opts.J0+opts.NJ)
	if rows.IsEmpty() || cols.IsEmpty() {
		return nil, nil, fmt.Errorf("core: tile projects outside the detector (rows %v, cols %v)", rows, cols)
	}

	// Load the row band and crop the column window.
	st, err := opts.Source.LoadRows(rows, 0, sys.NP)
	if err != nil {
		return nil, nil, err
	}
	parker, err := NewParker(sys)
	if err != nil {
		return nil, nil, err
	}
	if err := applyParker(parker, st); err != nil {
		return nil, nil, err
	}
	// Filter on full-width rows (the ramp is a full-row convolution; the
	// column crop applies after filtering, exactly as the row crop
	// applies after the 2-D filter of Equation 2).
	fdk, err := NewFilter(sys, opts.Window)
	if err != nil {
		return nil, nil, err
	}
	if err := fdk.FilterRows(st.Data, st.NV*st.NP, func(i int) int { return st.V0 + i/st.NP }, opts.Workers); err != nil {
		return nil, nil, err
	}
	cropped, err := st.ExtractColumns(cols.Lo, cols.Hi)
	if err != nil {
		return nil, nil, err
	}
	if err := opts.Device.Alloc(cropped.Bytes()); err != nil {
		return nil, nil, err
	}
	defer opts.Device.Free(cropped.Bytes())
	opts.Device.RecordH2D(cropped.Bytes(), 1)

	// Shift the matrices to the cropped detector and the tile-local
	// voxel origin. (Row shifting is unnecessary: the stack carries V0
	// and the kernel's access layer resolves global rows.)
	mats := make([]geometry.Mat34x4, sys.NP)
	for p := range mats {
		m := sys.Matrix(sys.Angle(p)).
			ShiftDetector(float64(cols.Lo), 0).
			ShiftVolume(float64(opts.I0), float64(opts.J0), 0)
		mats[p] = m.ToKernel()
	}
	tile, err := volume.NewSlab(opts.NI, opts.NJ, opts.NK, opts.K0)
	if err != nil {
		return nil, nil, err
	}
	if err := backproject.Batch(opts.Device, cropped, mats, tile); err != nil {
		return nil, nil, err
	}
	opts.Device.RecordD2H(tile.Bytes())

	rep := &TileReport{
		Rows: rows, Columns: cols,
		InputBytes:     cropped.Bytes(),
		FullInputBytes: int64(sys.NU) * int64(sys.NV) * int64(sys.NP) * 4,
	}
	return tile, rep, nil
}
