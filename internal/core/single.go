package core

import (
	"fmt"
	"sync"
	"time"

	"distfdk/internal/backproject"
	"distfdk/internal/device"
	"distfdk/internal/fault"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/pipeline"
	"distfdk/internal/projection"
	"distfdk/internal/telemetry"
	"distfdk/internal/volume"
)

// SlabSink receives finished sub-volumes from the store stage. Both the
// in-memory VolumeSink and storage.SlabWriter satisfy it.
type SlabSink interface {
	WriteSlab(*volume.Volume) error
}

// VolumeSink assembles slabs into one in-memory volume; safe for concurrent
// writers.
type VolumeSink struct {
	V  *volume.Volume
	mu sync.Mutex
}

// NewVolumeSink allocates a sink covering the plan's full volume.
func NewVolumeSink(sys *geometry.System) (*VolumeSink, error) {
	v, err := volume.New(sys.NX, sys.NY, sys.NZ)
	if err != nil {
		return nil, err
	}
	return &VolumeSink{V: v}, nil
}

// WriteSlab implements SlabSink.
func (s *VolumeSink) WriteSlab(slab *volume.Volume) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.V.CopySlabFrom(slab)
}

// DiscardSink is a SlabSink that drops every slab. Follower processes of
// a multi-process world use it: group leaders — the only ranks that store
// — are pinned to the coordinator process, so a follower's sink is never
// written, but ClusterOptions still requires one.
type DiscardSink struct{}

// WriteSlab implements SlabSink by discarding the slab.
func (DiscardSink) WriteSlab(*volume.Volume) error { return nil }

// NewFilter builds the FDK row filter for a system, folding the angular
// quadrature into the filter gain so back-projection output is in density
// units without post-scaling: Δβ/2 for a full scan (each ray measured
// twice), Δβ for a Parker-weighted short scan (redundancy handled by the
// weights).
func NewFilter(sys *geometry.System, window filter.Window) (*filter.FDK, error) {
	scale := sys.AngleStep() / 2
	if sys.IsShortScan() {
		scale = sys.AngleStep()
	}
	return filter.NewFDK(filter.Config{
		NU: sys.NU, NV: sys.NV,
		DU: sys.DU, DV: sys.DV,
		DSD:    sys.DSD,
		SigmaU: sys.SigmaU, SigmaV: sys.SigmaV,
		Window: window,
		Scale:  scale,
		// Filter on the virtual detector through the rotation axis
		// (the FDK magnification correction).
		RampPitch: sys.DU * sys.DSO / sys.DSD,
	})
}

// KernelMatrices precomputes the float32 projection matrices for the global
// projection window [pLo, pHi).
func KernelMatrices(sys *geometry.System, pLo, pHi int) []geometry.Mat34x4 {
	out := make([]geometry.Mat34x4, 0, pHi-pLo)
	for p := pLo; p < pHi; p++ {
		out = append(out, sys.Matrix(sys.Angle(p)).ToKernel())
	}
	return out
}

// ReconOptions configures a single-device out-of-core reconstruction.
type ReconOptions struct {
	// Plan must describe a single rank (Ng=1, Nr=1); BatchCount controls
	// the slab granularity and hence the device-memory footprint.
	Plan *Plan
	// Source supplies the (unfiltered) projection data.
	Source projection.Source
	// Device executes the kernel and enforces the memory budget.
	Device *device.Device
	// Window selects the ramp apodisation (default Ram-Lak).
	Window filter.Window
	// FilterWorkers bounds the filtering parallelism (0 = GOMAXPROCS).
	FilterWorkers int
	// Kernel selects the back-projection arithmetic (default
	// KernelRecurrence; KernelExact retains the PR-1 per-sample form).
	Kernel backproject.Kernel
	// RingLayout selects the projection ring's memory layout (default
	// row-interleaved).
	RingLayout device.RingLayout
	// Fusion controls the filter→upload handoff (default FusionAuto; see
	// FusionMode).
	Fusion FusionMode
	// Sink receives finished slabs (required).
	Sink SlabSink
	// BPWorkers sets the worker count of the back-projection stage.
	// Values > 1 make the stage elastic: batches back-project concurrently
	// behind a reorder buffer, with ring uploads split into a dedicated
	// sequential stage that releases rows only once the pipeline's
	// in-flight bound proves no concurrent batch can still read them (the
	// ring is sized deeper to match). The
	// reconstruction is bit-identical to BPWorkers=1. Falls back to the
	// sequential stage when the slab schedule needs a ring reset (disjoint
	// row ranges) or the pipeline is disabled.
	BPWorkers int
	// Tracer, when set, records the Figure 10-style pipeline timeline.
	Tracer *pipeline.Tracer
	// DisablePipeline runs the stages serially (for ablation only).
	DisablePipeline bool
	// Retry, when set, retries transient load and store failures with
	// capped exponential backoff; permanent failures abort immediately.
	// Nil means a single attempt.
	Retry *fault.RetryPolicy
	// Checkpoint, when set, journals every stored slab (keyed by its
	// first slice z0) and skips slabs the log already records — pass a
	// reopened journal to resume a killed run from its last durable
	// batch. The resumed volume is bit-identical to an uninterrupted one.
	Checkpoint CheckpointLog
	// Telemetry, when set, collects the run's metrics and spans: pipeline
	// stage spans and credit waits, ring traffic, and retry activity all
	// report into this registry. When Tracer is nil a tracer backed by
	// this registry is installed so the stage timeline and the exported
	// trace share one span set. Nil keeps every instrumented path at a
	// single pointer check.
	Telemetry *telemetry.Registry
}

// slabRowsMonotone reports whether consecutive non-empty batches of group g
// always overlap or abut upward (no ring Reset ever needed) — the regime in
// which elastic back-projection's lagged release is valid.
func slabRowsMonotone(p *Plan, g int) bool {
	prev := geometry.RowRange{}
	for c := 0; c < p.BatchCount; c++ {
		rows := p.SlabRows(g, c)
		if rows.IsEmpty() {
			continue
		}
		if !prev.IsEmpty() && (rows.Lo >= prev.Hi || rows.Lo < prev.Lo) {
			return false
		}
		prev = rows
	}
	return true
}

// ReconReport summarises a reconstruction run.
type ReconReport struct {
	Elapsed time.Duration
	Ledger  device.Ledger
	// Slabs is the number of non-empty batches processed.
	Slabs int
}

// ReconstructSingle performs the paper's out-of-core single-device
// reconstruction (Table 5's scenario): slabs stream through the
// load → filter → back-project → store pipeline of Figure 9 while the
// projection ring keeps every detector row's host-to-device transfer to
// exactly one, no matter how large the output volume is relative to device
// memory.
func ReconstructSingle(opts ReconOptions) (*ReconReport, error) {
	p := opts.Plan
	if p == nil || opts.Source == nil || opts.Device == nil || opts.Sink == nil {
		return nil, fmt.Errorf("core: Plan, Source, Device and Sink are required")
	}
	if p.Ranks() != 1 {
		return nil, fmt.Errorf("core: ReconstructSingle needs a 1-rank plan, got %s", p)
	}
	nu, np, nv := opts.Source.Dims()
	if nu != p.Sys.NU || np != p.Sys.NP || nv != p.Sys.NV {
		return nil, fmt.Errorf("core: source %dx%dx%d does not match system %dx%dx%d",
			nu, np, nv, p.Sys.NU, p.Sys.NP, p.Sys.NV)
	}
	fdk, err := NewFilter(p.Sys, opts.Window)
	if err != nil {
		return nil, err
	}
	parker, err := NewParker(p.Sys)
	if err != nil {
		return nil, err
	}
	mats := KernelMatrices(p.Sys, 0, p.Sys.NP)

	// Elastic back-projection needs a deeper ring (rows of every possibly
	// in-flight batch stay resident) and a schedule that never resets the
	// ring; otherwise fall back to the sequential stage.
	bpWorkers := opts.BPWorkers
	if bpWorkers < 1 {
		bpWorkers = 1
	}
	elastic := bpWorkers > 1 && !opts.DisablePipeline && slabRowsMonotone(p, 0)
	if !elastic {
		bpWorkers = 1
	}
	// The release lag is derived from the pipeline's completion guarantee,
	// not an estimate of buffering: UpstreamCompletionLag proves that while
	// the (sequential) upload stage processes batch c, every batch below
	// c − releaseLag has finished back-projecting — the connecting queue
	// holds at most queueDepth batches the elastic stage has not taken, and
	// dispatch credits keep any taken batch within InFlightBound of the
	// in-order completion cursor. Any batch still reading the ring thus has
	// index ≥ c − releaseLag, and with monotone slab rows it only needs
	// rows at or above batch (c−releaseLag)'s start — exactly the watermark
	// uploadStage releases to, so a straggling batch can stall indefinitely
	// without its rows being evicted. queueDepth is pinned here and
	// installed on the pipeline below so the coupling cannot silently
	// drift if the depth is ever tuned.
	queueDepth := pipeline.DefaultQueueDepth
	releaseLag := pipeline.UpstreamCompletionLag(queueDepth, bpWorkers)
	depth := p.RingDepth(0)
	if elastic {
		depth = p.RingDepthWindow(0, releaseLag+1)
	}
	// Fusion: filter straight into ring slots wherever the handoff is
	// sequential (see FusionMode). The stage that owns ring mutation does
	// the fused fill, so no mode introduces a mutation/read race.
	fused := opts.Fusion == FusionOn ||
		(opts.Fusion == FusionAuto && (opts.DisablePipeline || elastic))
	ring, err := device.NewProjRingLayout(opts.Device, p.Sys.NU, p.Sys.NP, depth, opts.RingLayout)
	if err != nil {
		return nil, err
	}
	defer ring.Close()
	// The device also holds one slab at a time.
	if err := opts.Device.Alloc(p.SlabBytes()); err != nil {
		return nil, fmt.Errorf("core: slab buffer: %w", err)
	}
	defer opts.Device.Free(p.SlabBytes())

	opts.Device.SetTelemetry(opts.Telemetry)
	retry := opts.Retry.Instrumented(opts.Telemetry)

	start := time.Now()
	before := opts.Device.Snapshot()
	slabs := 0

	var prevLoaded geometry.RowRange // owned by the load stage
	var prevResident geometry.RowRange

	loadStage := func(c int, _ any) (any, error) {
		if opts.Checkpoint != nil {
			// The checkpoint key is the slab's output identity z0, shared
			// with the distributed drivers, so the journals interoperate.
			if z0, nz := p.SlabZ(0, c); nz > 0 && opts.Checkpoint.Done(z0) {
				return skipBatch{}, nil
			}
		}
		rows := p.SlabRows(0, c)
		if rows.IsEmpty() {
			return nil, nil
		}
		diff := geometry.DifferentialRows(prevLoaded, rows)
		prevLoaded = rows
		if diff.IsEmpty() {
			return (*projection.Stack)(nil), nil
		}
		var st *projection.Stack
		err := retry.Do(func() error {
			var lerr error
			st, lerr = opts.Source.LoadRows(diff, 0, p.Sys.NP)
			return lerr
		})
		if err != nil {
			return nil, err
		}
		return st, nil
	}
	filterStage := func(c int, in any) (any, error) {
		st, _ := in.(*projection.Stack)
		if st == nil || fused {
			// Fused: the raw stack flows through; the ring-owning stage
			// filters it into the slots (fuseUpload).
			return in, nil
		}
		if err := applyParker(parker, st); err != nil {
			return nil, err
		}
		count := st.NV * st.NP
		err := fdk.FilterRows(st.Data, count, func(i int) int { return st.V0 + i/st.NP }, opts.FilterWorkers)
		return st, err
	}
	bpStage := func(c int, in any) (any, error) {
		if _, ok := in.(skipBatch); ok {
			return in, nil // checkpointed batch: leave ring and cursors alone
		}
		_, nz := p.SlabZ(0, c)
		if nz == 0 {
			return nil, nil
		}
		rows := p.SlabRows(0, c)
		if !prevResident.IsEmpty() && rows.Lo >= prevResident.Hi {
			ring.Reset() // disjoint ranges: nothing to reuse
		} else {
			ring.Release(rows.Lo)
		}
		if st, _ := in.(*projection.Stack); st != nil {
			if fused {
				if err := fuseUpload(ring, st, fdk, parker, opts.FilterWorkers); err != nil {
					return nil, err
				}
			} else if err := ring.LoadRows(st, st.Rows()); err != nil {
				return nil, err
			}
		}
		prevResident = rows
		z0, _ := p.SlabZ(0, c)
		slab, err := volume.NewSlab(p.Sys.NX, p.Sys.NY, nz, z0)
		if err != nil {
			return nil, err
		}
		if err := backproject.StreamingKernel(opts.Device, ring, mats, slab, rows, opts.Kernel); err != nil {
			return nil, err
		}
		opts.Device.RecordD2H(slab.Bytes())
		return slab, nil
	}
	// The elastic split of bpStage: a sequential upload stage owns all ring
	// mutation, releasing rows only below the start of batch c−releaseLag —
	// rows that, by the pipeline's in-flight bound (see releaseLag above),
	// no batch still back-projecting can touch; the back-project stage then
	// only reads the ring and can run its batches concurrently.
	uploadStage := func(c int, in any) (any, error) {
		if _, ok := in.(skipBatch); ok {
			return in, nil // checkpointed batch: leave the ring alone
		}
		rows := p.SlabRows(0, c)
		if rows.IsEmpty() {
			return nil, nil
		}
		if rc := c - releaseLag; rc >= 0 {
			if wm := p.SlabRows(0, rc); !wm.IsEmpty() {
				ring.Release(wm.Lo)
			}
		}
		if st, _ := in.(*projection.Stack); st != nil {
			if fused {
				if err := fuseUpload(ring, st, fdk, parker, opts.FilterWorkers); err != nil {
					return nil, err
				}
			} else if err := ring.LoadRows(st, st.Rows()); err != nil {
				return nil, err
			}
		}
		return rows, nil
	}
	bpCompute := func(c int, in any) (any, error) {
		rows, ok := in.(geometry.RowRange)
		if !ok {
			return nil, nil
		}
		z0, nz := p.SlabZ(0, c)
		slab, err := volume.NewSlab(p.Sys.NX, p.Sys.NY, nz, z0)
		if err != nil {
			return nil, err
		}
		if err := backproject.StreamingKernel(opts.Device, ring, mats, slab, rows, opts.Kernel); err != nil {
			return nil, err
		}
		opts.Device.RecordD2H(slab.Bytes())
		return slab, nil
	}

	storeStage := func(c int, in any) (any, error) {
		slab, _ := in.(*volume.Volume)
		if slab == nil {
			return nil, nil
		}
		slabs++
		// Slab offsets are fixed, so a retried store is idempotent.
		if err := retry.Do(func() error { return opts.Sink.WriteSlab(slab) }); err != nil {
			return nil, err
		}
		if opts.Checkpoint != nil {
			// Data before journal: force the slab to stable storage, then
			// record it done — never the other way round.
			if err := syncSink(opts.Sink); err != nil {
				return nil, err
			}
			return nil, opts.Checkpoint.Record(slab.Z0, c)
		}
		return nil, nil
	}

	if opts.DisablePipeline {
		for c := 0; c < p.BatchCount; c++ {
			var payload any
			var err error
			for _, fn := range []pipeline.StageFunc{loadStage, filterStage, bpStage, storeStage} {
				if payload, err = fn(c, payload); err != nil {
					return nil, err
				}
			}
		}
	} else {
		stages := []pipeline.Stage{
			{Name: "load", Fn: loadStage},
			{Name: "filter", Fn: filterStage},
		}
		if elastic {
			stages = append(stages,
				pipeline.Stage{Name: "upload", Fn: uploadStage},
				pipeline.Stage{Name: "backproject", Workers: bpWorkers, Fn: bpCompute},
			)
		} else {
			stages = append(stages, pipeline.Stage{Name: "backproject", Fn: bpStage})
		}
		stages = append(stages, pipeline.Stage{Name: "store", Fn: storeStage})
		pl, err := pipeline.New(stages...)
		if err != nil {
			return nil, err
		}
		// releaseLag and the ring depth were derived from queueDepth above;
		// installing it explicitly asserts the coupling in code.
		pl.QueueDepth = queueDepth
		pl.Tracer = opts.Tracer
		pl.Telemetry = opts.Telemetry
		if pl.Tracer == nil && opts.Telemetry != nil {
			// Stage spans land in the run registry so the exported trace
			// and the ASCII timeline share one span set.
			pl.Tracer = pipeline.TracerFor(opts.Telemetry)
		}
		if err := pl.Run(p.BatchCount); err != nil {
			return nil, err
		}
	}
	return &ReconReport{
		Elapsed: time.Since(start),
		Ledger:  opts.Device.Snapshot().Sub(before),
		Slabs:   slabs,
	}, nil
}
