package core

import (
	"testing"

	"distfdk/internal/device"
	"distfdk/internal/mpi"
	"distfdk/internal/pipeline"
	"distfdk/internal/projection"
	"distfdk/internal/volume"
)

// Elastic back-projection (BPWorkers > 1) must be a pure scheduling change:
// the volume is bit-identical to the sequential stage, the device balance
// still returns to zero, and each detector row still crosses the link
// exactly once (the deeper ring changes retention, not traffic).
func TestElasticBackprojectionBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	run := func(workers, batches int) (*volume.Volume, *ReconReport, *device.Device) {
		p, err := NewPlan(sys, 1, 1, batches)
		if err != nil {
			t.Fatal(err)
		}
		sink, _ := NewVolumeSink(sys)
		dev := device.New("t", 0, 2)
		rep, err := ReconstructSingle(ReconOptions{
			Plan: p, Source: src, Device: dev, Sink: sink, BPWorkers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sink.V, rep, dev
	}

	for _, batches := range []int{4, 8} {
		want, wantRep, _ := run(1, batches)
		for _, workers := range []int{2, 4} {
			got, rep, dev := run(workers, batches)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("batches=%d workers=%d: voxel %d: elastic %g != sequential %g",
						batches, workers, i, got.Data[i], want.Data[i])
				}
			}
			if rep.Slabs != wantRep.Slabs {
				t.Fatalf("batches=%d workers=%d: %d slabs, want %d", batches, workers, rep.Slabs, wantRep.Slabs)
			}
			if rep.Ledger.H2DBytes != wantRep.Ledger.H2DBytes {
				t.Fatalf("batches=%d workers=%d: H2D %d bytes, sequential moved %d",
					batches, workers, rep.Ledger.H2DBytes, wantRep.Ledger.H2DBytes)
			}
			if dev.Allocated() != 0 {
				t.Fatalf("batches=%d workers=%d: device memory leaked: %d", batches, workers, dev.Allocated())
			}
		}
	}
}

// BPWorkers must compose with a constrained device: the deeper elastic ring
// charges the budget honestly and the reconstruction still matches.
func TestElasticBackprojectionOutOfCore(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, _ := NewPlan(sys, 1, 1, 8)
	seq, _ := NewVolumeSink(sys)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: device.New("seq", 0, 2), Sink: seq,
	}); err != nil {
		t.Fatal(err)
	}

	// Size the budget to what the elastic run needs: windowed ring + slab.
	releaseLag := pipeline.UpstreamCompletionLag(pipeline.DefaultQueueDepth, 4) // as in single.go
	ringBytes := 4 * int64(sys.NU) * int64(sys.NP) * int64(p.RingDepthWindow(0, releaseLag+1))
	budget := ringBytes + 4*p.SlabBytes()
	ela, _ := NewVolumeSink(sys)
	dev := device.New("ela", budget, 2)
	if _, err := ReconstructSingle(ReconOptions{
		Plan: p, Source: src, Device: dev, Sink: ela, BPWorkers: 4,
	}); err != nil {
		t.Fatalf("elastic run under budget %d: %v", budget, err)
	}
	stats, _ := volume.Compare(seq.V, ela.V)
	if stats.MaxAbs != 0 {
		t.Fatalf("elastic out-of-core result differs: %+v", stats)
	}
	if dev.Allocated() != 0 {
		t.Fatalf("device memory leaked: %d", dev.Allocated())
	}
}

// The windowed ring depth must dominate the single-batch depth and be
// monotone in the window.
func TestRingDepthWindow(t *testing.T) {
	p, _ := NewPlan(testSystem(), 1, 1, 8)
	prev := 0
	for w := 1; w <= 6; w++ {
		d := p.RingDepthWindow(0, w)
		if d < prev {
			t.Fatalf("window %d: depth %d shrank from %d", w, d, prev)
		}
		prev = d
	}
	if p.RingDepthWindow(0, 1) != p.RingDepth(0) {
		t.Fatalf("window 1 depth %d != RingDepth %d", p.RingDepthWindow(0, 1), p.RingDepth(0))
	}
	if p.RingDepthWindow(0, 0) != p.RingDepth(0) {
		t.Fatal("window < 1 should clamp to 1")
	}
}

// Every reduction configuration of RunDistributed — plain, chunked at any
// chunk size, pooled or not — must assemble bit-identical volumes: the
// executor work is pure plumbing.
func TestDistributedReduceVariantsBitIdentical(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	run := func(reduceChunk int, pooled bool) *volume.Volume {
		prevPool := mpi.SetBufferPooling(pooled)
		defer mpi.SetBufferPooling(prevPool)
		p, _ := NewPlan(sys, 2, 2, 4)
		sink, _ := NewVolumeSink(sys)
		if _, err := RunDistributed(ClusterOptions{
			Plan: p, Source: src, Output: sink, ReduceChunk: reduceChunk,
		}); err != nil {
			t.Fatalf("chunk=%d pooled=%v: %v", reduceChunk, pooled, err)
		}
		return sink.V
	}

	want := run(-1, false) // monolithic Reduce, allocate-per-step
	for _, chunk := range []int{-1, 0, 1, 97, 1 << 20} {
		for _, pooled := range []bool{true, false} {
			got := run(chunk, pooled)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("chunk=%d pooled=%v: voxel %d differs from plain unpooled Reduce",
						chunk, pooled, i)
				}
			}
		}
	}
}

// The chunked default must preserve the headline communication bound:
// total reduce traffic is still (Nr−1)·Vol bytes, just in more messages.
func TestDistributedChunkedReduceTraffic(t *testing.T) {
	sys := testSystem()
	st := sheppStack(t, sys)
	src := &projection.MemorySource{Full: st}

	p, _ := NewPlan(sys, 1, 4, 4)
	sink, _ := NewVolumeSink(sys)
	rep, err := RunDistributed(ClusterOptions{Plan: p, Source: src, Output: sink})
	if err != nil {
		t.Fatal(err)
	}
	volBytes := 4 * int64(sys.NX) * int64(sys.NY) * int64(sys.NZ)
	if got := rep.TotalReduceBytes(); got != 3*volBytes {
		t.Fatalf("reduce bytes %d, want %d", got, 3*volBytes)
	}
	var chunks int64
	for _, s := range rep.GroupStats {
		chunks += s.ReduceChunks
	}
	if chunks == 0 {
		t.Fatal("default reduction forwarded no chunk segments; chunking is not wired in")
	}
}
