package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"distfdk/internal/core"
	"distfdk/internal/fault"
	"distfdk/internal/telemetry"
)

func TestValidateRunFlags(t *testing.T) {
	// The flag defaults must validate — otherwise every invocation dies.
	if err := validateRunFlags(core.DefaultMaxRestarts, core.DefaultRestartBackoff, 0); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateRunFlags(0, time.Second, 30*time.Second); err != nil {
		t.Fatalf("explicit zero budget rejected: %v", err)
	}

	cases := []struct {
		name     string
		restarts int
		backoff  time.Duration
		deadline time.Duration
		wantFlag string
	}{
		{"negative budget", -1, time.Second, 0, "max-restarts"},
		{"very negative budget", -99, time.Second, 0, "max-restarts"},
		{"zero backoff", 3, 0, 0, "restart-backoff"},
		{"negative backoff", 3, -time.Millisecond, 0, "restart-backoff"},
		{"negative deadline", 3, time.Second, -time.Second, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRunFlags(tc.restarts, tc.backoff, tc.deadline)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error is %T, want *FlagError", err)
			}
			if fe.Flag != tc.wantFlag {
				t.Fatalf("flagged -%s, want -%s (%v)", fe.Flag, tc.wantFlag, err)
			}
		})
	}
}

// An explicit `-max-restarts 0` must reach core as "no restarts", not as
// core's 0-means-default sentinel.
func TestRestartBudgetTranslation(t *testing.T) {
	if got := restartBudget(0); got >= 0 {
		t.Errorf("restartBudget(0) = %d, want negative (no restarts)", got)
	}
	if got := restartBudget(3); got != 3 {
		t.Errorf("restartBudget(3) = %d", got)
	}
}

func TestBuildChaosInjector(t *testing.T) {
	in, err := buildChaosInjector("1@1, 2@0", "")
	if err != nil {
		t.Fatal(err)
	}
	if in.PendingKills() != 2 {
		t.Errorf("pending kills = %d, want 2", in.PendingKills())
	}
	for _, bad := range []string{"1", "a@b", "1@", "@1", "1@1@1", "1@-2x"} {
		if _, err := buildChaosInjector(bad, ""); err == nil {
			t.Errorf("accepted bad kill spec %q", bad)
		}
		if _, err := buildChaosInjector("", bad); err == nil {
			t.Errorf("accepted bad sever spec %q", bad)
		}
	}
	// Both specs empty: nil injector, keeping the fault-free fast path.
	if in, err := buildChaosInjector("", ""); err != nil || in != nil {
		t.Errorf("empty specs = (%v, %v), want (nil, nil)", in, err)
	}
	// A sever spec compiles into a wire rule that fires at its nth
	// occurrence for the named rank only.
	in, err = buildChaosInjector("", "1@2")
	if err != nil {
		t.Fatal(err)
	}
	if in.Hit(fault.OpSever, 1) != nil {
		t.Error("sever fired on the first occurrence")
	}
	if in.Hit(fault.OpSever, 1) == nil {
		t.Error("sever did not fire on the second occurrence")
	}
	if in.Hit(fault.OpSever, 2) != nil {
		t.Error("sever fired for a foreign rank")
	}
}

// TestNetFlagsValidate pins the multi-process flag contract.
func TestNetFlagsValidate(t *testing.T) {
	ok := []netFlags{
		{},
		{world: 4, transport: "tcp"},
		{world: 2, transport: "unix"},
		{worker: true, proc: 1, procs: 4, transport: "tcp", connect: "127.0.0.1:9"},
	}
	for _, nf := range ok {
		if err := nf.validate(); err != nil {
			t.Errorf("%+v rejected: %v", nf, err)
		}
	}
	bad := []netFlags{
		{world: 4, worker: true, proc: 1, procs: 4, transport: "tcp", connect: "x"},
		{world: 4, transport: "carrier-pigeon"},
		{worker: true, transport: "tcp"},                            // no connect/proc/procs
		{worker: true, proc: 0, procs: 4, transport: "tcp", connect: "x"}, // proc 0 is the coordinator
		{worker: true, proc: 4, procs: 4, transport: "tcp", connect: "x"}, // proc out of range
	}
	for _, nf := range bad {
		if err := nf.validate(); err == nil {
			t.Errorf("%+v accepted", nf)
		}
	}
	if (netFlags{}).active() || !(netFlags{world: 2}).active() || !(netFlags{worker: true}).active() {
		t.Error("active() disagrees with the flag semantics")
	}
}

// An explicit -pprof on a busy port must surface as a typed error from
// servePprof before any reconstruction work starts — the CLI fails fast
// instead of running unobservable.
func TestServePprofBindFailure(t *testing.T) {
	run := telemetry.NewRun(1)
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	_, err = servePprof(busy.Addr().String(), run)
	if err == nil {
		t.Fatal("servePprof bound a busy port")
	}
	var se *telemetry.ServeError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *telemetry.ServeError", err)
	}
	if se.Addr != busy.Addr().String() {
		t.Errorf("ServeError.Addr = %q, want %q", se.Addr, busy.Addr().String())
	}
	if se.Unwrap() == nil {
		t.Error("ServeError carries no cause")
	}

	// A free port succeeds and serves immediately.
	srv, err := servePprof("127.0.0.1:0", run)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Error("bound server reports no address")
	}
}

// startStatusPoll with a non-positive interval is inert — the closer it
// returns must be safe to call with no endpoint at all.
func TestStartStatusPollDisabled(t *testing.T) {
	finish := startStatusPoll("127.0.0.1:1", 0)
	finish() // must not fatal or block
}
