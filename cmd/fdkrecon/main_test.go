package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"distfdk/internal/core"
	"distfdk/internal/telemetry"
)

func TestValidateRunFlags(t *testing.T) {
	// The flag defaults must validate — otherwise every invocation dies.
	if err := validateRunFlags(core.DefaultMaxRestarts, core.DefaultRestartBackoff, 0); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateRunFlags(0, time.Second, 30*time.Second); err != nil {
		t.Fatalf("explicit zero budget rejected: %v", err)
	}

	cases := []struct {
		name     string
		restarts int
		backoff  time.Duration
		deadline time.Duration
		wantFlag string
	}{
		{"negative budget", -1, time.Second, 0, "max-restarts"},
		{"very negative budget", -99, time.Second, 0, "max-restarts"},
		{"zero backoff", 3, 0, 0, "restart-backoff"},
		{"negative backoff", 3, -time.Millisecond, 0, "restart-backoff"},
		{"negative deadline", 3, time.Second, -time.Second, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRunFlags(tc.restarts, tc.backoff, tc.deadline)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error is %T, want *FlagError", err)
			}
			if fe.Flag != tc.wantFlag {
				t.Fatalf("flagged -%s, want -%s (%v)", fe.Flag, tc.wantFlag, err)
			}
		})
	}
}

// An explicit `-max-restarts 0` must reach core as "no restarts", not as
// core's 0-means-default sentinel.
func TestRestartBudgetTranslation(t *testing.T) {
	if got := restartBudget(0); got >= 0 {
		t.Errorf("restartBudget(0) = %d, want negative (no restarts)", got)
	}
	if got := restartBudget(3); got != 3 {
		t.Errorf("restartBudget(3) = %d", got)
	}
}

func TestBuildKillInjector(t *testing.T) {
	in, err := buildKillInjector("1@1, 2@0")
	if err != nil {
		t.Fatal(err)
	}
	if in.PendingKills() != 2 {
		t.Errorf("pending kills = %d, want 2", in.PendingKills())
	}
	for _, bad := range []string{"1", "a@b", "1@", "@1", "1@1@1", "1@-2x"} {
		if _, err := buildKillInjector(bad); err == nil {
			t.Errorf("accepted bad kill spec %q", bad)
		}
	}
}

// An explicit -pprof on a busy port must surface as a typed error from
// servePprof before any reconstruction work starts — the CLI fails fast
// instead of running unobservable.
func TestServePprofBindFailure(t *testing.T) {
	run := telemetry.NewRun(1)
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	_, err = servePprof(busy.Addr().String(), run)
	if err == nil {
		t.Fatal("servePprof bound a busy port")
	}
	var se *telemetry.ServeError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *telemetry.ServeError", err)
	}
	if se.Addr != busy.Addr().String() {
		t.Errorf("ServeError.Addr = %q, want %q", se.Addr, busy.Addr().String())
	}
	if se.Unwrap() == nil {
		t.Error("ServeError carries no cause")
	}

	// A free port succeeds and serves immediately.
	srv, err := servePprof("127.0.0.1:0", run)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Error("bound server reports no address")
	}
}

// startStatusPoll with a non-positive interval is inert — the closer it
// returns must be safe to call with no endpoint at all.
func TestStartStatusPollDisabled(t *testing.T) {
	finish := startStatusPoll("127.0.0.1:1", 0)
	finish() // must not fatal or block
}
