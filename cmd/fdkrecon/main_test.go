package main

import (
	"errors"
	"testing"
	"time"

	"distfdk/internal/core"
)

func TestValidateRunFlags(t *testing.T) {
	// The flag defaults must validate — otherwise every invocation dies.
	if err := validateRunFlags(core.DefaultMaxRestarts, core.DefaultRestartBackoff, 0); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateRunFlags(0, time.Second, 30*time.Second); err != nil {
		t.Fatalf("explicit zero budget rejected: %v", err)
	}

	cases := []struct {
		name     string
		restarts int
		backoff  time.Duration
		deadline time.Duration
		wantFlag string
	}{
		{"negative budget", -1, time.Second, 0, "max-restarts"},
		{"very negative budget", -99, time.Second, 0, "max-restarts"},
		{"zero backoff", 3, 0, 0, "restart-backoff"},
		{"negative backoff", 3, -time.Millisecond, 0, "restart-backoff"},
		{"negative deadline", 3, time.Second, -time.Second, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRunFlags(tc.restarts, tc.backoff, tc.deadline)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error is %T, want *FlagError", err)
			}
			if fe.Flag != tc.wantFlag {
				t.Fatalf("flagged -%s, want -%s (%v)", fe.Flag, tc.wantFlag, err)
			}
		})
	}
}

// An explicit `-max-restarts 0` must reach core as "no restarts", not as
// core's 0-means-default sentinel.
func TestRestartBudgetTranslation(t *testing.T) {
	if got := restartBudget(0); got >= 0 {
		t.Errorf("restartBudget(0) = %d, want negative (no restarts)", got)
	}
	if got := restartBudget(3); got != 3 {
		t.Errorf("restartBudget(3) = %d", got)
	}
}

func TestBuildKillInjector(t *testing.T) {
	in, err := buildKillInjector("1@1, 2@0")
	if err != nil {
		t.Fatal(err)
	}
	if in.PendingKills() != 2 {
		t.Errorf("pending kills = %d, want 2", in.PendingKills())
	}
	for _, bad := range []string{"1", "a@b", "1@", "@1", "1@1@1", "1@-2x"} {
		if _, err := buildKillInjector(bad); err == nil {
			t.Errorf("accepted bad kill spec %q", bad)
		}
	}
}
