// Multi-process launch mode: -world N makes this invocation the
// coordinator (hub, proc 0) of an N-process socket world. It spawns the
// N-1 worker processes itself — the same binary re-exec'd with the
// internal -worker flags — wires everyone through internal/mpi/nettrans
// over loopback TCP (or a unix socket with -transport unix), and runs
// exactly the reconstruction the in-process mode runs: group leaders
// live on the coordinator, so only it touches the output volume and the
// journal; workers re-run the same batch loop and the same supervision
// decisions against a discard sink. A worker process dying mid-run
// surfaces on every survivor as the same typed rank loss the channel
// world produces, so -journal shrink-and-resume works unchanged across
// OS processes.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"distfdk/internal/core"
	"distfdk/internal/fault"
	"distfdk/internal/mpi/nettrans"
	"distfdk/internal/storage"
	"distfdk/internal/telemetry"
)

// defaultNetDeadline bounds collectives in socket mode when the user set
// no -deadline: a lost process must surface typed, not hang the run. The
// coordinator forwards the resolved value, so every process agrees.
const defaultNetDeadline = 30 * time.Second

// netFlags carries the multi-process launch flags.
type netFlags struct {
	world     int    // >1: coordinator of a world of this many processes
	worker    bool   // internal: run as a spawned worker
	proc      int    // internal: this worker's process id
	procs     int    // internal: total process count
	transport string // tcp or unix
	connect   string // internal: the hub's address
}

func (nf netFlags) active() bool { return nf.world > 1 || nf.worker }

func (nf netFlags) validate() error {
	if nf.world > 1 && nf.worker {
		return fmt.Errorf("-world and -worker are mutually exclusive (-worker is spawned internally)")
	}
	if nf.worker && (nf.connect == "" || nf.proc < 1 || nf.procs < 2 || nf.proc >= nf.procs) {
		return fmt.Errorf("-worker needs -connect, -procs >= 2 and -proc in [1, procs)")
	}
	if nf.active() && nf.transport != "tcp" && nf.transport != "unix" {
		return fmt.Errorf("unknown -transport %q (tcp, unix)", nf.transport)
	}
	return nil
}

// socketWorld is one process's seat in the multi-process world: its
// nettrans endpoint, the registry its transport counters land in, and
// (coordinator only) the spawned worker processes.
type socketWorld struct {
	node    *nettrans.Node
	reg     *telemetry.Registry
	workers []*exec.Cmd
	sockDir string
}

// startSocketWorld builds this process's endpoint. The coordinator
// listens first, then re-execs the binary once per worker with the
// forwarded reconstruction flags plus its own address; a worker just
// dials. Transport counters go to the run's shared registry when
// telemetry is on, so -metrics-json artifacts carry the transport.*
// evidence of any wire recovery.
func startSocketWorld(nf netFlags, inj *fault.Injector, run *telemetry.Run, forward []string) (*socketWorld, error) {
	sw := &socketWorld{reg: telemetry.NewRegistry()}
	if run != nil {
		sw.reg = run.Shared()
	}
	cfg := nettrans.Config{
		Network:   nf.transport,
		Injector:  inj,
		Telemetry: sw.reg,
	}
	if nf.worker {
		cfg.Proc, cfg.Procs, cfg.Addr = nf.proc, nf.procs, nf.connect
		// Each process owns a telemetry Run; partition the message-id
		// space so per-process artifacts never collide.
		cfg.MsgIDBase = int64(nf.proc) << 44
		node, err := nettrans.NewNode(cfg)
		if err != nil {
			return nil, err
		}
		sw.node = node
		return sw, nil
	}

	cfg.Proc, cfg.Procs = 0, nf.world
	switch nf.transport {
	case "tcp":
		cfg.Addr = "127.0.0.1:0"
	case "unix":
		dir, err := os.MkdirTemp("", "fdkrecon-world-*")
		if err != nil {
			return nil, err
		}
		sw.sockDir = dir
		cfg.Addr = filepath.Join(dir, "hub.sock")
	}
	node, err := nettrans.NewNode(cfg)
	if err != nil {
		sw.cleanup()
		return nil, err
	}
	sw.node = node
	exe, err := os.Executable()
	if err != nil {
		sw.close()
		return nil, err
	}
	for p := 1; p < nf.world; p++ {
		args := []string{
			"-worker", "-proc", strconv.Itoa(p), "-procs", strconv.Itoa(nf.world),
			"-transport", nf.transport, "-connect", node.Addr(),
		}
		args = append(args, forward...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			sw.kill()
			sw.close()
			return nil, fmt.Errorf("spawn worker %d: %w", p, err)
		}
		sw.workers = append(sw.workers, cmd)
	}
	return sw, nil
}

// finish waits for every worker to exit cleanly and, when a sever was
// injected, asserts the wire actually exercised the reconnect path —
// the smoke contract: chaos that silently failed to fire is a failure.
func (sw *socketWorld) finish(expectReconnect bool) {
	for i, cmd := range sw.workers {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("worker proc %d: %v", i+1, err)
		}
	}
	if expectReconnect && sw.reg.Snapshot().Counters["transport.reconnects"] < 1 {
		log.Fatal("injected sever never forced a reconnect (wire fault layer inert?)")
	}
	if n := len(sw.workers); n > 0 {
		fmt.Printf("socket world: %d worker processes exited cleanly\n", n)
	}
	sw.close()
}

// kill terminates any still-running workers (coordinator failure path).
func (sw *socketWorld) kill() {
	for _, cmd := range sw.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

func (sw *socketWorld) close() {
	if sw.node != nil {
		sw.node.Close()
	}
	sw.cleanup()
}

func (sw *socketWorld) cleanup() {
	if sw.sockDir != "" {
		os.RemoveAll(sw.sockDir)
	}
}

// runFollower is a worker process's reconstruction driver: the same plan
// and batch loop as the coordinator, but slab output is discarded (group
// leaders live on proc 0, so no slab ever reaches a worker's sink) and
// supervise telemetry is suppressed so shared counters are not
// double-counted across processes. In journal mode the worker reopens
// the coordinator's journal each attempt — records are appended durably
// before any verdict is exchanged, so a post-restart reopen always sees
// every completed slab.
func runFollower(copts core.ClusterOptions, journal string, maxRestarts int, backoff time.Duration) {
	copts.Output = core.DiscardSink{}
	if journal == "" {
		if _, err := core.RunDistributed(copts); err != nil {
			log.Fatalf("worker: %v", err)
		}
		return
	}
	if _, err := core.Supervise(core.SuperviseOptions{
		Cluster: copts,
		OpenCheckpoint: func(fp string) (core.CheckpointLog, error) {
			return storage.OpenJournal(journal, fp)
		},
		MaxRestarts:    maxRestarts,
		RestartBackoff: backoff,
		Follower:       true,
	}); err != nil {
		log.Fatalf("worker: %v", err)
	}
}

// buildChaosInjector compiles the CLI chaos schedule: one-shot rank
// kills ("rank@batch,...") plus wire-level connection severs
// ("rank@nth,..." — the connection carrying that rank's nth outgoing
// frame is cut; the link must reconnect and replay). Returns nil when
// both specs are empty so the fault-free path keeps its nil-injector
// fast path. Every process receives the same schedule; a rule only
// fires on the process hosting its rank, so the world-wide schedule
// stays deterministic.
func buildChaosInjector(kills, severs string) (*fault.Injector, error) {
	if kills == "" && severs == "" {
		return nil, nil
	}
	var rules []fault.Rule
	for _, part := range splitSpec(severs) {
		rank, nth, err := parseAtPair(part)
		if err != nil {
			return nil, fmt.Errorf("bad -sever entry %q (want rank@nth, e.g. 1@2)", part)
		}
		rules = append(rules, fault.Rule{Op: fault.OpSever, Rank: rank, Nth: nth})
	}
	in := fault.NewInjector(1, rules...)
	for _, part := range splitSpec(kills) {
		rank, batch, err := parseAtPair(part)
		if err != nil {
			return nil, fmt.Errorf("bad -kill entry %q (want rank@batch, e.g. 1@1)", part)
		}
		in.ScheduleKill(rank, batch)
	}
	return in, nil
}

func splitSpec(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseAtPair(part string) (int, int, error) {
	var a, b int
	if _, err := fmt.Sscanf(part, "%d@%d", &a, &b); err != nil || fmt.Sprintf("%d@%d", a, b) != part {
		return 0, 0, fmt.Errorf("malformed %q", part)
	}
	if a < 0 || b < 0 {
		return 0, 0, fmt.Errorf("negative field in %q", part)
	}
	return a, b, nil
}
