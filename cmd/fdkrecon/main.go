// Command fdkrecon reconstructs a cone-beam CT volume with the streaming
// FDK pipeline. Input is either a projection container written by
// phantomgen/storage.WriteStack or a synthetic dataset generated on the
// fly:
//
//	fdkrecon -dataset tomo_00030 -div 8 -n 64 -o vol.fbk -slice slice.pgm
//	fdkrecon -in projections.fbp -dataset tomo_00030 -div 8 -n 64 -o vol.fbk
//
// Multi-rank mode (-groups/-ranks) runs the grouped decomposition with the
// segmented reduction in-process. Adding -world N spreads the same world
// over N OS processes wired through loopback sockets (see world.go):
//
//	fdkrecon -div 16 -n 32 -groups 2 -ranks 2 -world 4 -journal vol.journal -o vol.fbk
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"distfdk/internal/backproject"
	"distfdk/internal/core"
	"distfdk/internal/dataset"
	"distfdk/internal/device"
	"distfdk/internal/experiments"
	"distfdk/internal/filter"
	"distfdk/internal/geometry"
	"distfdk/internal/iterative"
	"distfdk/internal/pipeline"
	"distfdk/internal/projection"
	"distfdk/internal/storage"
	"distfdk/internal/telemetry"
	"distfdk/internal/volume"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdkrecon: ")

	var (
		dsName     = flag.String("dataset", "tomo_00030", "dataset geometry (see DESIGN.md registry)")
		div        = flag.Int("div", 8, "detector/angle scale divisor for the synthetic twin")
		outN       = flag.Int("n", 64, "output volume size n³")
		inPath     = flag.String("in", "", "projection container (.fbp); empty synthesises the dataset's phantom")
		outPath    = flag.String("o", "volume.fbk", "output volume file")
		slice      = flag.String("slice", "", "optional central-slice PGM path")
		window     = flag.String("window", "ram-lak", "ramp window: ram-lak, shepp-logan, cosine, hamming, hann")
		groups     = flag.Int("groups", 1, "Ng rank groups")
		ranks      = flag.Int("ranks", 1, "Nr ranks per group")
		batches    = flag.Int("batches", core.DefaultBatchCount, "Nc slab batches")
		memMB      = flag.Int64("devmem", 0, "device memory budget in MiB (0 = unlimited)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "CPU parallelism")
		timeline   = flag.Bool("timeline", false, "print the pipeline timeline (single-rank mode)")
		zlo        = flag.Int("zlo", -1, "first slice of a Z-window (ROI) reconstruction; -1 = full volume")
		znz        = flag.Int("znz", 0, "slice count of the Z-window (with -zlo)")
		stats      = flag.Bool("stats", false, "print volume statistics")
		algo       = flag.String("algo", "fdk", "reconstruction algorithm: fdk, sirt, ossart, mlem, osem")
		iters      = flag.Int("iters", 10, "iterations for the iterative algorithms")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) of the run")
		metrics    = flag.String("metrics-json", "", "write the run's metrics JSON artifact")
		pprof      = flag.String("pprof", "", "serve net/http/pprof, Prometheus /metrics and /statusz on this address (e.g. localhost:6060)")
		statusPoll = flag.Duration("status-poll", 0, "with -pprof: poll the live /metrics and /statusz endpoints at this interval during the run and fail unless they validate (smoke test)")
		journal    = flag.String("journal", "", "checkpoint journal path (multi-rank mode): durable slab output with crash resume and supervised shrink-and-resume through rank loss")
		restarts   = flag.Int("max-restarts", core.DefaultMaxRestarts, "restart budget of the supervised run (with -journal)")
		backoff    = flag.Duration("restart-backoff", core.DefaultRestartBackoff, "initial relaunch backoff, doubled per restart (with -journal)")
		deadline   = flag.Duration("deadline", 0, "collective deadline: a lost peer surfaces as a typed error within this bound (0 waits for world teardown)")
		kills      = flag.String("kill", "", "chaos: comma-separated rank@batch kill schedule, e.g. 1@1,2@0 (recovery drill with -journal)")
		kernelFl   = flag.String("kernels", "recurrence", "back-projection arithmetic: recurrence, exact (the PR-1 escape hatch) or simd (AVX2; silently falls back to recurrence elsewhere)")
		layoutFl   = flag.String("ring-layout", "interleaved", "projection ring layout: interleaved or proj-major")
		fusionFl   = flag.String("fusion", "auto", "filter-into-ring fusion: auto, on, off")
		worldN     = flag.Int("world", 0, "spread the multi-rank run over this many OS processes wired through loopback sockets (this process becomes the coordinator and spawns the workers)")
		transport  = flag.String("transport", "tcp", "socket transport of -world mode: tcp or unix")
		severSpec  = flag.String("sever", "", "chaos: comma-separated rank@nth wire severs, e.g. 1@2 cuts the connection carrying rank 1's 2nd outgoing frame (-world mode; the link must reconnect and replay)")
		workerFl   = flag.Bool("worker", false, "internal: run as a spawned worker process of a -world coordinator")
		procFl     = flag.Int("proc", 0, "internal: this worker's process id (with -worker)")
		procsFl    = flag.Int("procs", 0, "internal: total process count (with -worker)")
		connectFl  = flag.String("connect", "", "internal: the coordinator's socket address (with -worker)")
	)
	flag.Parse()

	nf := netFlags{world: *worldN, worker: *workerFl, proc: *procFl,
		procs: *procsFl, transport: *transport, connect: *connectFl}
	if err := nf.validate(); err != nil {
		log.Fatal(err)
	}

	if err := validateRunFlags(*restarts, *backoff, *deadline); err != nil {
		log.Fatal(err)
	}

	win, err := filter.ParseWindow(*window)
	if err != nil {
		log.Fatal(err)
	}
	kern, err := backproject.ParseKernel(*kernelFl)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := device.ParseRingLayout(*layoutFl)
	if err != nil {
		log.Fatal(err)
	}
	fusion, err := core.ParseFusionMode(*fusionFl)
	if err != nil {
		log.Fatal(err)
	}

	var source projection.Source
	var sysFromScenario *experiments.Scenario
	if *inPath != "" {
		src, err := storage.OpenStack(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer src.Close()
		source = src
	}
	sc, err := experiments.BuildScenario(*dsName, *div, *outN, *workers)
	if err != nil {
		log.Fatal(err)
	}
	sysFromScenario = sc
	sys := sysFromScenario.Sys
	if source == nil {
		source = sc.Source
	} else {
		nu, np, nv := source.Dims()
		if nu != sys.NU || np != sys.NP || nv != sys.NV {
			log.Fatalf("input %dx%dx%d does not match %s/%d geometry %dx%dx%d",
				nu, np, nv, *dsName, *div, sys.NU, sys.NP, sys.NV)
		}
	}

	if *algo != "fdk" {
		vol, err := runIterative(*algo, sys, source, *iters, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := vol.SaveRaw(*outPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume %s written to %s\n", vol.ShapeString(), *outPath)
		if *slice != "" {
			if err := vol.SavePGM(*slice, sys.NZ/2, 0, 0); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("central slice written to %s\n", *slice)
		}
		if *stats {
			printStats(vol.Summarize())
		}
		return
	}

	if *zlo >= 0 {
		vol, rep, err := core.ReconstructZWindow(core.ZWindowOptions{
			Sys: sys, Source: source,
			Device: device.New("roi", *memMB<<20, *workers),
			Window: win, Z0: *zlo, NZ: *znz, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ROI slices [%d,%d) reconstructed in %d slabs (H2D %.1f MiB)\n",
			*zlo, *zlo+*znz, rep.Slabs, float64(rep.Ledger.H2DBytes)/(1<<20))
		if err := vol.SaveRaw(*outPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ROI volume %s written to %s\n", vol.ShapeString(), *outPath)
		if *slice != "" {
			if err := vol.SavePGM(*slice, vol.NZ/2, 0, 0); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("central ROI slice written to %s\n", *slice)
		}
		if *stats {
			printStats(vol.Summarize())
		}
		return
	}

	plan, err := core.NewPlan(sys, *groups, *ranks, *batches)
	if err != nil {
		log.Fatal(err)
	}
	if *journal != "" && plan.Ranks() == 1 {
		log.Fatal("-journal requires multi-rank mode (-groups/-ranks > 1); a single-rank run writes its volume directly")
	}
	if nf.active() && plan.Ranks() == 1 {
		log.Fatal("-world/-worker require multi-rank mode (-groups/-ranks > 1)")
	}
	if *severSpec != "" && !nf.active() {
		log.Fatal("-sever injects wire faults; it needs -world/-worker (the channel world has no wire)")
	}
	// Durable mode streams slabs to disk through a SlabWriter instead of
	// assembling them in memory, so the sink is only built without -journal.
	// Worker processes never assemble a volume at all.
	var sink *core.VolumeSink
	if *journal == "" && !nf.worker {
		sink, err = core.NewVolumeSink(sys)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Telemetry is collected whenever any consumer of it was requested;
	// otherwise every instrumented path stays at a single pointer check.
	var run *telemetry.Run
	if *traceOut != "" || *metrics != "" || *pprof != "" {
		run = telemetry.NewRun(plan.Ranks())
	}
	// finishPoll stops the -status-poll loop (if any) and fails the run
	// unless the live endpoints validated while work was in flight.
	finishPoll := func() {}
	if *pprof != "" {
		srv, err := servePprof(*pprof, run)
		if err != nil {
			// -pprof was explicitly requested; a busy port must fail fast,
			// not leave the run silently unobservable.
			log.Fatal(err)
		}
		defer srv.Close()
		finishPoll = startStatusPoll(srv.Addr(), *statusPoll)
	}

	if plan.Ranks() == 1 {
		reg := run.Rank(0)
		tracer := pipeline.TracerFor(reg)
		if reg == nil {
			tracer = pipeline.NewTracer()
		}
		rep, err := core.ReconstructSingle(core.ReconOptions{
			Plan: plan, Source: source,
			Device: device.New("local", *memMB<<20, *workers),
			Window: win, Sink: sink, Tracer: tracer, Telemetry: reg,
			Kernel: kern, RingLayout: layout, Fusion: fusion,
		})
		if err != nil {
			log.Fatal(err)
		}
		finishPoll()
		fmt.Printf("reconstructed %d slabs in %v (H2D %.1f MiB, D2H %.1f MiB)\n",
			rep.Slabs, rep.Elapsed.Round(1e6),
			float64(rep.Ledger.H2DBytes)/(1<<20), float64(rep.Ledger.D2HBytes)/(1<<20))
		if *timeline {
			fmt.Print(tracer.RenderASCII([]string{"load", "filter", "backproject", "store"}, 100))
		}
		writeTelemetry(*traceOut, *metrics, run.Snapshots())
	} else {
		copts := core.ClusterOptions{
			Plan: plan, Source: source, Window: win,
			DeviceMemBytes: *memMB << 20,
			Telemetry:      run, CollectiveDeadline: *deadline,
			Kernel: kern, RingLayout: layout, Fusion: fusion,
		}
		inj, err := buildChaosInjector(*kills, *severSpec)
		if err != nil {
			log.Fatal(err)
		}
		copts.FaultInjector = inj

		var sw *socketWorld
		if nf.active() {
			if copts.CollectiveDeadline == 0 {
				copts.CollectiveDeadline = defaultNetDeadline
			}
			// The reconstruction flags a worker must agree on, forwarded
			// verbatim; the resolved deadline keeps both sides' bounds equal.
			forward := []string{
				"-dataset", *dsName, "-div", strconv.Itoa(*div), "-n", strconv.Itoa(*outN),
				"-groups", strconv.Itoa(*groups), "-ranks", strconv.Itoa(*ranks),
				"-batches", strconv.Itoa(*batches),
				"-window", *window, "-kernels", *kernelFl,
				"-ring-layout", *layoutFl, "-fusion", *fusionFl,
				"-devmem", strconv.FormatInt(*memMB, 10),
				"-workers", strconv.Itoa(*workers),
				"-deadline", copts.CollectiveDeadline.String(),
			}
			if *journal != "" {
				forward = append(forward, "-journal", *journal,
					"-max-restarts", strconv.Itoa(*restarts),
					"-restart-backoff", backoff.String())
			}
			if *kills != "" {
				forward = append(forward, "-kill", *kills)
			}
			if *severSpec != "" {
				forward = append(forward, "-sever", *severSpec)
			}
			sw, err = startSocketWorld(nf, inj, run, forward)
			if err != nil {
				log.Fatal(err)
			}
			copts.Launch = sw.node.Launcher(plan.NRanksPerGroup)
		}
		if nf.worker {
			runFollower(copts, *journal, restartBudget(*restarts), *backoff)
			sw.close()
			return
		}

		if *journal != "" {
			runSupervised(copts, sys, run, supervisedConfig{
				journal:  *journal,
				outPath:  *outPath,
				restarts: restartBudget(*restarts),
				backoff:  *backoff,
				traceOut: *traceOut,
				metrics:  *metrics,
			})
			if sw != nil {
				// Workers follow the same supervision decisions; all of them
				// must land on the same recovered world and exit cleanly.
				sw.finish(*severSpec != "")
			}
			finishPoll()
			// The SlabWriter already promoted the volume; voxels are only
			// loaded back when the post-run views need them.
			if *slice != "" || *stats {
				vol, err := volume.LoadRaw(*outPath)
				if err != nil {
					log.Fatal(err)
				}
				if *slice != "" {
					if err := vol.SavePGM(*slice, sys.NZ/2, 0, 0); err != nil {
						log.Fatal(err)
					}
					fmt.Printf("central slice written to %s\n", *slice)
				}
				if *stats {
					printStats(vol.Summarize())
				}
			}
			printGeometry(*dsName)
			return
		}

		copts.Output = sink
		rep, err := core.RunDistributed(copts)
		if rep != nil {
			// Artifacts are written even when the run failed: a partial
			// trace is exactly what diagnoses the failure.
			writeTelemetry(*traceOut, *metrics, rep.Telemetry)
		}
		if err != nil {
			if sw != nil {
				sw.kill()
			}
			log.Fatal(err)
		}
		if sw != nil {
			sw.finish(*severSpec != "")
		}
		finishPoll()
		fmt.Printf("reconstructed on %d ranks (%d groups × %d) in %v; reduce traffic %.1f MiB\n",
			plan.Ranks(), *groups, *ranks, rep.Elapsed.Round(1e6),
			float64(rep.TotalReduceBytes())/(1<<20))
		fmt.Print(rep.String())
	}

	if err := sink.V.SaveRaw(*outPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume %dx%dx%d written to %s\n", sys.NX, sys.NY, sys.NZ, *outPath)
	if *slice != "" {
		if err := sink.V.SavePGM(*slice, sys.NZ/2, 0, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("central slice written to %s\n", *slice)
	}
	if *stats {
		printStats(sink.V.Summarize())
	}
	printGeometry(*dsName)
}

// supervisedConfig carries the durable-mode knobs into runSupervised.
type supervisedConfig struct {
	journal  string
	outPath  string
	restarts int
	backoff  time.Duration
	traceOut string
	metrics  string
}

// runSupervised runs the distributed reconstruction in durable mode: slabs
// stream into outPath+".partial" through the crash-consistent SlabWriter,
// every stored slab is journaled, and core.Supervise replans and relaunches
// the world in-process through rank loss. A failed run keeps the partial
// volume and the journal so rerunning the same command resumes where it
// stopped; a successful one promotes the volume and removes the journal.
func runSupervised(copts core.ClusterOptions, sys *geometry.System, run *telemetry.Run, cfg supervisedConfig) {
	var w *storage.SlabWriter
	var err error
	if _, serr := os.Stat(cfg.outPath + storage.PartialSuffix); serr == nil {
		w, err = storage.ResumeSlabWriter(cfg.outPath, sys.NX, sys.NY, sys.NZ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming %s%s: journaled slabs will be skipped\n",
			cfg.outPath, storage.PartialSuffix)
	} else {
		// A journal with no partial volume describes slabs that no longer
		// exist on disk; a fresh run must not skip them.
		if rerr := os.Remove(cfg.journal); rerr == nil {
			log.Printf("removed stale journal %s (no partial volume to resume)", cfg.journal)
		}
		w, err = storage.NewSlabWriter(cfg.outPath, sys.NX, sys.NY, sys.NZ)
		if err != nil {
			log.Fatal(err)
		}
	}
	w.SetTelemetry(run.Shared())
	copts.Output = w

	sup, err := core.Supervise(core.SuperviseOptions{
		Cluster: copts,
		OpenCheckpoint: func(fp string) (core.CheckpointLog, error) {
			j, jerr := storage.OpenJournal(cfg.journal, fp)
			if jerr != nil {
				return nil, jerr
			}
			j.SetTelemetry(run.Shared())
			return j, nil
		},
		MaxRestarts:    cfg.restarts,
		RestartBackoff: cfg.backoff,
	})
	if sup != nil && sup.Final != nil {
		// Artifacts are written even when the run failed: a partial trace
		// of the recovery attempts is exactly what diagnoses the failure.
		writeTelemetry(cfg.traceOut, cfg.metrics, sup.Final.Telemetry)
	}
	if err != nil {
		w.ClosePartial()
		log.Fatalf("%v\npartial volume and journal kept; rerun the same command to resume", err)
	}
	fmt.Print(sup.String())
	fmt.Print(sup.Final.String())
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	os.Remove(cfg.journal)
	fmt.Printf("volume %dx%dx%d written to %s\n", sys.NX, sys.NY, sys.NZ, cfg.outPath)
}

// printGeometry prints the dataset's descriptive line when its name is
// registered.
func printGeometry(dsName string) {
	ds, err := dataset.ByName(dsName)
	if err == nil {
		fmt.Printf("geometry: %s (magnification %.2f)\n", ds.Description, ds.Magnification())
	}
}

// runIterative reconstructs with one of the iterative algorithms. The
// stack must be fully loadable (iterative methods need all angles every
// pass).
func runIterative(algo string, sys *geometry.System, source projection.Source, iters, workers int) (*volume.Volume, error) {
	_, np, nv := source.Dims()
	full, err := source.LoadRows(geometry.RowRange{Lo: 0, Hi: nv}, 0, np)
	if err != nil {
		return nil, err
	}
	opts := iterative.Options{Iterations: iters, NonNegative: true, Workers: workers,
		Callback: func(it int, rel float64) bool {
			fmt.Printf("  %s pass %2d: relative residual %.4f\n", algo, it, rel)
			return true
		}}
	switch algo {
	case "sirt":
		res, err := iterative.Reconstruct(sys, full, opts)
		if err != nil {
			return nil, err
		}
		return res.Volume, nil
	case "ossart":
		opts.Subsets = 4
		res, err := iterative.Reconstruct(sys, full, opts)
		if err != nil {
			return nil, err
		}
		return res.Volume, nil
	case "mlem":
		res, err := iterative.ReconstructMLEM(sys, full, opts)
		if err != nil {
			return nil, err
		}
		return res.Volume, nil
	case "osem":
		opts.Subsets = 4
		res, err := iterative.ReconstructMLEM(sys, full, opts)
		if err != nil {
			return nil, err
		}
		return res.Volume, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (fdk, sirt, ossart, mlem, osem)", algo)
}

var publishTelemetry sync.Once

// servePprof starts the live introspection endpoint: net/http/pprof on
// /debug/pprof, an expvar view of the telemetry snapshots on /debug/vars,
// Prometheus text exposition on /metrics and the distfdk-status/1 JSON on
// /statusz — all live while back-projection runs. The bind is synchronous,
// so a busy port surfaces as a typed *telemetry.ServeError to the caller
// instead of a log line from a background goroutine.
func servePprof(addr string, run *telemetry.Run) (*telemetry.StatusServer, error) {
	// expvar panics on duplicate names: publish once even when the caller
	// retries after a failed bind.
	publishTelemetry.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return run.Snapshots()
		}))
	})
	srv, err := telemetry.ListenStatus(addr, run)
	if err != nil {
		return nil, err
	}
	fmt.Printf("introspection endpoints on http://%s/{debug/pprof,metrics,statusz}\n", srv.Addr())
	return srv, nil
}

// startStatusPoll runs the -status-poll loop against the live endpoint and
// returns the closer that stops it and enforces the smoke contract: at
// least one poll validated, at least one observed the run in flight.
// A non-positive interval disables polling.
func startStatusPoll(addr string, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	resCh := make(chan telemetry.PollResult, 1)
	go func() { resCh <- telemetry.PollStatus("http://"+addr, every, done) }()
	return func() {
		close(done)
		res := <-resCh
		if res.Valid == 0 || res.Active == 0 {
			log.Fatalf("-status-poll: %d polls, %d valid, %d active (last error: %v)",
				res.Polls, res.Valid, res.Active, res.LastErr)
		}
		fmt.Printf("status poll: %d/%d polls valid, %d observed in-flight work\n",
			res.Valid, res.Polls, res.Active)
	}
}

// writeTelemetry writes the requested trace/metrics artifacts from the
// run's snapshots; empty paths are skipped.
func writeTelemetry(tracePath, metricsPath string, snaps []telemetry.Snapshot) {
	write := func(path string, render func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := render(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry artifact written to %s\n", path)
	}
	write(tracePath, func(f *os.File) error { return telemetry.WriteChromeTrace(f, snaps) })
	write(metricsPath, func(f *os.File) error { return telemetry.WriteMetricsJSON(f, snaps) })
}

func printStats(s volume.Summary) {
	fmt.Printf("stats: min %.4f, max %.4f, mean %.4f, std %.4f", s.Min, s.Max, s.Mean, s.Std)
	if s.NaNOrInf > 0 {
		fmt.Printf(", NON-FINITE VOXELS: %d", s.NaNOrInf)
	}
	fmt.Println()
}
