package main

import (
	"fmt"
	"time"
)

// FlagError is a typed rejection of a flag value, so tests (and future
// callers embedding the CLI) can assert on which flag was bad instead of
// string-matching log output.
type FlagError struct {
	Flag   string
	Reason string
}

func (e *FlagError) Error() string {
	return fmt.Sprintf("-%s: %s", e.Flag, e.Reason)
}

// validateRunFlags rejects the flag corner cases that would otherwise be
// silently reinterpreted deep inside core: a negative restart budget
// means "no restarts" to core.Supervise, a non-positive backoff silently
// becomes the default, and a negative deadline would arm collectives
// with an already-expired timer. All three are almost certainly typos at
// the CLI surface, so they fail loudly here instead.
//
// -deadline 0 stays legal: it is the documented "wait for world
// teardown" mode, not a degenerate timeout.
func validateRunFlags(maxRestarts int, restartBackoff, deadline time.Duration) error {
	if maxRestarts < 0 {
		return &FlagError{Flag: "max-restarts",
			Reason: fmt.Sprintf("restart budget must not be negative (got %d); use 0 to run with no restarts", maxRestarts)}
	}
	if restartBackoff <= 0 {
		return &FlagError{Flag: "restart-backoff",
			Reason: fmt.Sprintf("backoff must be positive (got %v)", restartBackoff)}
	}
	if deadline < 0 {
		return &FlagError{Flag: "deadline",
			Reason: fmt.Sprintf("deadline must not be negative (got %v); use 0 to wait for world teardown", deadline)}
	}
	return nil
}

// restartBudget translates the CLI flag to core.Supervise's convention.
// At the CLI, `-max-restarts 0` reads as "do not restart" — but core
// treats 0 as "use the default budget" and negatives as "no restarts",
// so a literal pass-through would silently turn an explicit 0 into 3.
func restartBudget(flagValue int) int {
	if flagValue == 0 {
		return -1
	}
	return flagValue
}
