// Command phantomgen synthesises cone-beam projection datasets: it forward
// projects a dataset's phantom through its (scaled) acquisition geometry
// and writes a projection container that fdkrecon can reconstruct.
//
//	phantomgen -dataset coffee-bean -div 16 -o coffee.fbp
//	phantomgen -dataset tomo_00030 -div 8 -counts -o raw.fbp
//
// With -counts the output holds raw photon counts (inverse Beer–Lambert),
// exercising the preprocessing path of Equation 1 at reconstruction time.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"distfdk/internal/dataset"
	"distfdk/internal/filter"
	"distfdk/internal/forward"
	"distfdk/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phantomgen: ")

	var (
		dsName   = flag.String("dataset", "tomo_00030", "dataset geometry and phantom")
		div      = flag.Int("div", 8, "detector/angle scale divisor")
		outN     = flag.Int("n", 64, "reconstruction grid used only for geometry validation")
		counts   = flag.Bool("counts", false, "emit raw photon counts instead of line integrals")
		outPath  = flag.String("o", "projections.fbp", "output projection container")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "CPU parallelism")
		noise    = flag.Float64("noise", 0, "photon budget λ_blank for Poisson noise (0 = noiseless)")
		sinogram = flag.String("sinogram", "", "optional central-row sinogram PGM path")
	)
	flag.Parse()

	ds, err := dataset.ByName(*dsName)
	if err != nil {
		log.Fatal(err)
	}
	scaled, err := ds.Scaled(*div)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := scaled.System(*outN)
	if err != nil {
		log.Fatal(err)
	}
	stack, err := forward.Project(sys, scaled.Phantom(), scaled.FOV/2, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if *noise > 0 {
		if err := forward.AddPoissonNoise(stack, &filter.Beer{Blank: *noise}, 1); err != nil {
			log.Fatal(err)
		}
	}
	kind := "line integrals"
	if *counts {
		forward.ToCounts(stack, scaled.Beer())
		kind = "photon counts"
	}
	if *sinogram != "" {
		if err := stack.SaveSinogramPGM(*sinogram, stack.NV/2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("central sinogram written to %s\n", *sinogram)
	}
	if err := storage.WriteStack(*outPath, stack); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d projections of %dx%d (%s, %.1f MiB) -> %s\n",
		scaled.Name, stack.NP, stack.NU, stack.NV, kind,
		float64(stack.Bytes())/(1<<20), *outPath)
}
