// Command fdkbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment id matches a paper artifact:
//
//	fdkbench -exp table5        # out-of-core single-device evaluation
//	fdkbench -exp fig13         # strong scaling to 1024 simulated GPUs
//	fdkbench -exp all -out out/ # everything, with images under out/
//
// Laptop-scale experiments execute the full reconstruction code path on
// synthetic twins of the paper's datasets; paper-scale experiments run the
// calibrated discrete-event simulator with the published ABCI parameters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"distfdk/internal/experiments"
	"distfdk/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), ", ")+", or all")
	out := flag.String("out", "bench_out", "directory for image/timeline artifacts")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "CPU parallelism")
	list := flag.Bool("list", false, "list experiment ids and exit")
	kernelJSON := flag.String("kernel-json", "", "run the hot-loop kernel benchmark and append the entry to this JSON file (skips -exp)")
	execJSON := flag.String("exec-json", "", "run the scale-out executor benchmark and append the entry to this JSON file (skips -exp)")
	label := flag.String("label", "", "label stamped into the -kernel-json / -exec-json entry")
	reps := flag.Int("reps", 3, "repetitions per -kernel-json / -exec-json measurement (best-of)")
	kernel := flag.String("kernels", "recurrence", "back-projection arithmetic for -kernel-json: recurrence, exact or simd (simd needs AVX2; silently falls back to recurrence otherwise)")
	ringLayout := flag.String("ring-layout", "interleaved", "streaming ring layout for -kernel-json: interleaved or proj-major")
	parity := flag.Bool("parity", false, "validate the recurrence kernel — and, when the host has AVX2, the simd kernel — against the exact kernel (parity gates + streaming==batch identity); exit non-zero on violation")
	smoke := flag.Bool("smoke", false, "reduced-size -kernel-json run for CI: smaller scenario, 1 rep, parity on")
	checkTrace := flag.String("check-trace", "", "validate a Chrome trace artifact (exit non-zero on violation) and exit")
	requireFlows := flag.Bool("require-matched-flows", false, "with -check-trace, additionally require flow events to be present and fully matched (every recv arrow has its send)")
	checkMetrics := flag.String("check-metrics", "", "validate a metrics JSON artifact (exit non-zero on violation) and exit")
	checkProm := flag.String("check-prom", "", "validate a Prometheus text exposition file (exit non-zero on violation) and exit")
	checkBench := flag.String("check-bench", "", "validate comma-separated BENCH_kernel.json / BENCH_exec.json ledgers (exit non-zero on violation) and exit")
	pprofAddr := flag.String("pprof", "", "serve pprof + live /metrics + /statusz on this address during the benchmarks")
	flag.Parse()

	// The bench run's own progress registry: the live endpoints show which
	// experiment is in flight and how many finished.
	benchRun := telemetry.NewRun(1)
	if *pprofAddr != "" {
		srv, err := telemetry.ListenStatus(*pprofAddr, benchRun)
		if err != nil {
			log.Fatalf("fdkbench: %v", err)
		}
		defer srv.Close()
		fmt.Printf("introspection endpoints on http://%s/{debug/pprof,metrics,statusz}\n", srv.Addr())
	}
	if *checkTrace != "" || *checkMetrics != "" || *checkProm != "" {
		checkArtifacts(*checkTrace, *checkMetrics, *checkProm, *requireFlows)
		return
	}
	if *checkBench != "" {
		checkBenchLedgers(strings.Split(*checkBench, ","))
		return
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *kernelJSON != "" {
		opts := experiments.KernelBenchOptions{
			Workers:    *workers,
			Reps:       *reps,
			Label:      *label,
			Kernel:     *kernel,
			RingLayout: *ringLayout,
			Parity:     *parity,
			GitCommit:  gitCommit(),
		}
		if *smoke {
			// CI-sized run: small volume, single rep, always gated. The
			// GUPS number is still recorded but only the gate matters.
			opts.Div = 16
			opts.OutN = 32
			opts.Reps = 1
			opts.Parity = true
			if opts.Label == "" {
				opts.Label = "bench-smoke"
			}
		}
		entry, err := experiments.RunKernelBench(opts)
		if entry != nil {
			if aerr := experiments.AppendKernelBenchJSON(*kernelJSON, entry); err == nil {
				err = aerr
			}
			fmt.Print(entry.Summary())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		return
	}
	if *execJSON != "" {
		entry, err := experiments.RunExecBench(experiments.ExecBenchOptions{
			Reps:      *reps,
			Label:     *label,
			GitCommit: gitCommit(),
		})
		if err == nil {
			err = experiments.AppendExecBenchJSON(*execJSON, entry)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		fmt.Print(entry.Summary())
		return
	}
	reg := benchRun.Rank(0)
	reg.SetStatus("stage", "experiments")
	reg.SetStatus("experiment", *exp)
	tables, err := experiments.Run(*exp, experiments.RunOptions{OutDir: *out, Workers: *workers})
	reg.SetStatus("stage", "done")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdkbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		reg.Counter("bench.tables").Inc()
		fmt.Println(t.Render())
	}
}

// checkArtifacts validates telemetry artifacts a run produced — the
// `make trace-smoke` gate. Exits non-zero with the violation on stderr so
// CI fails loudly on a malformed trace.
func checkArtifacts(tracePath, metricsPath, promPath string, requireFlows bool) {
	if tracePath != "" {
		data, err := os.ReadFile(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		sum, err := telemetry.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		fmt.Printf("trace %s: %d duration events across %d processes, %d/%d flow arrows matched\n",
			tracePath, sum.Events, len(sum.Pids), sum.FlowEnds, sum.FlowBegins)
		if requireFlows {
			if sum.FlowBegins == 0 {
				fmt.Fprintf(os.Stderr, "fdkbench: trace %s carries no flow events\n", tracePath)
				os.Exit(1)
			}
			if n := sum.Unmatched(); n > 0 {
				fmt.Fprintf(os.Stderr, "fdkbench: trace %s has %d unmatched flow begins\n", tracePath, n)
				os.Exit(1)
			}
		}
	}
	if metricsPath != "" {
		data, err := os.ReadFile(metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		rep, err := telemetry.ValidateMetricsJSON(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics %s: %d rank sections, %d skewed counters\n",
			metricsPath, len(rep.Ranks), len(rep.Cluster))
		if cp := rep.CriticalPath; cp != nil {
			fmt.Printf("metrics %s: critical path %v (comm %.1f%%, wait %.1f%%)\n",
				metricsPath, time.Duration(cp.MakespanNs).Round(time.Microsecond),
				100*cp.CommFraction, 100*cp.WaitFraction)
		}
	}
	if promPath != "" {
		data, err := os.ReadFile(promPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		n, err := telemetry.ValidatePrometheus(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		fmt.Printf("prom %s: %d samples\n", promPath, n)
	}
}

// checkBenchLedgers validates the append-only benchmark ledgers — the
// `make check` gate over BENCH_kernel.json / BENCH_exec.json. The ledger
// kind is sniffed from the first entry's shape (kernel entries carry
// backprojection rows, exec entries pipeline rows), so the flag takes any
// mix of paths. Exits non-zero with the violation on stderr.
func checkBenchLedgers(paths []string) {
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdkbench:", err)
			os.Exit(1)
		}
		var sniff struct {
			Entries []struct {
				Backprojection []json.RawMessage `json:"backprojection"`
				Pipeline       []json.RawMessage `json:"pipeline"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(data, &sniff); err != nil {
			fmt.Fprintf(os.Stderr, "fdkbench: %s: %v\n", path, err)
			os.Exit(1)
		}
		kind := "unrecognized"
		if len(sniff.Entries) > 0 {
			switch {
			case sniff.Entries[0].Backprojection != nil:
				kind = "kernel"
			case sniff.Entries[0].Pipeline != nil:
				kind = "exec"
			}
		}
		switch kind {
		case "kernel":
			f, err := experiments.ValidateKernelBenchJSON(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdkbench: %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("bench %s: valid kernel ledger, %d entries\n", path, len(f.Entries))
		case "exec":
			f, err := experiments.ValidateExecBenchJSON(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdkbench: %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("bench %s: valid exec ledger, %d entries\n", path, len(f.Entries))
		default:
			fmt.Fprintf(os.Stderr, "fdkbench: %s: neither a kernel nor an exec bench ledger\n", path)
			os.Exit(1)
		}
	}
}

// gitCommit resolves the working tree's short commit hash for the bench
// record, or "unknown" outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
