// Command fdkbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment id matches a paper artifact:
//
//	fdkbench -exp table5        # out-of-core single-device evaluation
//	fdkbench -exp fig13         # strong scaling to 1024 simulated GPUs
//	fdkbench -exp all -out out/ # everything, with images under out/
//
// Laptop-scale experiments execute the full reconstruction code path on
// synthetic twins of the paper's datasets; paper-scale experiments run the
// calibrated discrete-event simulator with the published ABCI parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"distfdk/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), ", ")+", or all")
	out := flag.String("out", "bench_out", "directory for image/timeline artifacts")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "CPU parallelism")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	tables, err := experiments.Run(*exp, experiments.RunOptions{OutDir: *out, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdkbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
