// Command slogate is the robustness release wall: it replays the fault
// scenarios under scenarios/ — each a declarative YAML description of a
// world shape, a fault schedule and the SLOs the framework must hold
// under it — and exits non-zero when any gate breaches.
//
//	slogate                          # replay scenarios/, write artifacts/slo/
//	slogate -only kill -runs 5       # subset, more replays per arm
//	slogate -list                    # show scenarios and their gates
//	slogate -check artifacts/slo/analysis.json   # validate an artifact
//
// Every scenario runs as two paired arms on the same synthetic world:
// a fault-free baseline and the injected schedule, each replayed -runs
// times. Gate metrics are IQR-trimmed medians (ratios compare the two
// arms' medians), so a single scheduler hiccup does not flip a verdict.
// The analysis lands in -out as analysis.json (schema distfdk-slo/1,
// machine-checked by -check in CI) and analysis.md (human-readable).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"distfdk/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slogate: ")
	dir := flag.String("scenarios", "scenarios", "directory of scenario *.yaml files")
	out := flag.String("out", filepath.Join("artifacts", "slo"), "directory for analysis.json / analysis.md")
	runs := flag.Int("runs", 0, "override every scenario's runs-per-arm (0 keeps each file's setting)")
	only := flag.String("only", "", "replay only scenarios whose name contains this substring")
	list := flag.Bool("list", false, "list scenarios and their gates, then exit")
	check := flag.String("check", "", "validate an analysis.json artifact and exit")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			log.Fatal(err)
		}
		a, err := scenario.ValidateAnalysisJSON(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid %s artifact, %d scenarios, pass=%v\n",
			*check, a.Schema, len(a.Scenarios), a.Pass)
		if !a.Pass {
			os.Exit(1)
		}
		return
	}

	cfgs, err := scenario.LoadDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if *only != "" {
		kept := cfgs[:0]
		for _, c := range cfgs {
			if strings.Contains(c.Name, *only) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			log.Fatalf("no scenario name contains %q", *only)
		}
		cfgs = kept
	}

	if *list {
		for _, c := range cfgs {
			fmt.Printf("%-24s %s\n", c.Name, c.Description)
			fmt.Printf("%-24s   seed %d · %d runs · expect %s\n", "", c.Seed, c.Runs, c.Expect)
			for _, g := range c.Gates {
				fmt.Printf("%-24s   gate %s — %s\n", "", g.Metric, scenario.MetricHelp(g.Metric))
			}
		}
		return
	}

	var results []scenario.ScenarioResult
	for _, cfg := range cfgs {
		if *runs > 0 {
			cfg.Runs = *runs
		}
		res, err := scenario.Execute(cfg, log.Printf)
		if err != nil {
			// The world itself failed to build: record the failure as a
			// failing scenario so the artifact tells the story, and keep
			// gating the rest.
			log.Printf("%s: %v", cfg.Name, err)
			res = &scenario.ScenarioResult{Name: cfg.Name, Description: cfg.Description,
				Seed: cfg.Seed, Runs: cfg.Runs, Expect: cfg.Expect, Error: err.Error()}
		}
		verdict := "pass"
		if !res.Pass {
			verdict = "FAIL"
		}
		log.Printf("%s: %s", cfg.Name, verdict)
		results = append(results, *res)
	}

	a := scenario.NewAnalysis(results, time.Now().UTC().Format(time.RFC3339))
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	data, err := a.JSON()
	if err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(*out, "analysis.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	mdPath := filepath.Join(*out, "analysis.md")
	if err := os.WriteFile(mdPath, []byte(a.Markdown()), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s and %s", jsonPath, mdPath)
	if !a.Pass {
		log.Print("SLO gate: FAIL")
		os.Exit(1)
	}
	log.Print("SLO gate: PASS")
}
