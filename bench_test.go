// Package distfdk's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (Section 6), plus the ablation
// benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Laptop-scale benches execute the real code path on synthetic dataset
// twins; the Fig13/14/15 benches drive the paper-scale discrete-event
// simulation. Custom metrics report the paper's units (GUPS, bytes moved).
package distfdk

import (
	"fmt"
	"sync"
	"testing"

	"distfdk/internal/backproject"
	"distfdk/internal/core"
	"distfdk/internal/dataset"
	"distfdk/internal/dessim"
	"distfdk/internal/device"
	"distfdk/internal/experiments"
	"distfdk/internal/forward"
	"distfdk/internal/geometry"
	"distfdk/internal/iterative"
	"distfdk/internal/perfmodel"
	"distfdk/internal/phantom"
	"distfdk/internal/volume"
)

// scenario caching: synthesising projections dominates setup time, so the
// benches share one scenario per (dataset, div, outN).
var (
	scenarioMu    sync.Mutex
	scenarioCache = map[string]*experiments.Scenario{}
)

func scenario(b *testing.B, name string, div, outN int) *experiments.Scenario {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", name, div, outN)
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if sc, ok := scenarioCache[key]; ok {
		return sc
	}
	sc, err := experiments.BuildScenario(name, div, outN, 0)
	if err != nil {
		b.Fatal(err)
	}
	scenarioCache[key] = sc
	return sc
}

// BenchmarkTable2Communication measures the distributed reconstruction
// whose traffic counters populate Table 2's comparison (2-D decomposition,
// segmented reduce).
func BenchmarkTable2Communication(b *testing.B) {
	sc := scenario(b, "tomo_00029", 24, 48)
	plan, err := core.NewPlan(sc.Sys, 2, 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	var reduceBytes, h2dBytes int64
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		rep, err := core.RunDistributed(core.ClusterOptions{Plan: plan, Source: sc.Source, Output: sink})
		if err != nil {
			b.Fatal(err)
		}
		reduceBytes = rep.TotalReduceBytes()
		h2dBytes = rep.TotalH2DBytes()
	}
	b.ReportMetric(float64(reduceBytes), "reduceB/op")
	b.ReportMetric(float64(h2dBytes), "h2dB/op")
}

// BenchmarkTable5OutOfCore measures the streaming single-device
// reconstruction under a device budget too small for the conventional
// kernel (Table 5's scenario).
func BenchmarkTable5OutOfCore(b *testing.B) {
	sc := scenario(b, "tomo_00030", 8, 64)
	plan, err := core.NewPlan(sc.Sys, 1, 1, core.DefaultBatchCount)
	if err != nil {
		b.Fatal(err)
	}
	budget := (sc.Stack.Bytes() + 4*int64(64*64*64)) / 2
	updates := int64(sc.Sys.NX) * int64(sc.Sys.NY) * int64(sc.Sys.NZ) * int64(sc.Sys.NP)
	b.SetBytes(updates * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.ReconstructSingle(core.ReconOptions{
			Plan: plan, Source: sc.Source, Device: device.New("bench", budget, 0), Sink: sink,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(updates)/1e9/b.Elapsed().Seconds()*float64(b.N), "GUPS")
}

// BenchmarkFig8SegmentedReduce measures the four-rank grouped
// reconstruction behind Figure 8's slice.
func BenchmarkFig8SegmentedReduce(b *testing.B) {
	sc := scenario(b, "tomo_00030", 8, 48)
	plan, err := core.NewPlan(sc.Sys, 1, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.RunDistributed(core.ClusterOptions{Plan: plan, Source: sc.Source, Output: sink}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Pipeline measures the end-to-end pipelined flow whose
// timeline is Figure 10.
func BenchmarkFig10Pipeline(b *testing.B) {
	sc := scenario(b, "tomo_00029", 24, 64)
	plan, err := core.NewPlan(sc.Sys, 1, 1, core.DefaultBatchCount)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.ReconstructSingle(core.ReconOptions{
			Plan: plan, Source: sc.Source, Device: device.New("bench", 0, 0), Sink: sink,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11CoffeeBean measures the coffee-bean reconstruction of
// Figure 11a (stitched-geometry stand-in).
func BenchmarkFig11CoffeeBean(b *testing.B) {
	sc := scenario(b, "coffee-bean", 32, 64)
	plan, err := core.NewPlan(sc.Sys, 1, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.ReconstructSingle(core.ReconOptions{
			Plan: plan, Source: sc.Source, Device: device.New("bench", 0, 0), Sink: sink,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// kernelBench runs one back-projection kernel for the Figure 12 roofline
// comparison, reporting GUPS and GFLOP/s.
func kernelBench(b *testing.B, streaming bool) {
	sc := scenario(b, "tomo_00030", 8, 64)
	sys := sc.Sys
	mats := core.KernelMatrices(sys, 0, sys.NP)
	dev := device.New("bench", 0, 0)
	updates := int64(sys.NX) * int64(sys.NY) * int64(sys.NZ) * int64(sys.NP)
	b.SetBytes(updates * 4)
	before := dev.Snapshot()

	if streaming {
		ring, err := device.NewProjRing(dev, sys.NU, sys.NP, sys.NV)
		if err != nil {
			b.Fatal(err)
		}
		defer ring.Close()
		if err := ring.LoadRows(sc.Stack, sc.Stack.Rows()); err != nil {
			b.Fatal(err)
		}
		rows := geometry.RowRange{Lo: 0, Hi: sys.NV}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vol, _ := volume.New(sys.NX, sys.NY, sys.NZ)
			if err := backproject.Streaming(dev, ring, mats, vol, rows); err != nil {
				b.Fatal(err)
			}
		}
	} else {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vol, _ := volume.New(sys.NX, sys.NY, sys.NZ)
			if err := backproject.Batch(dev, sc.Stack, mats, vol); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Throughput from the device ledger: the updates the kernel actually
	// performed across all b.N iterations, not the analytic product.
	ledger := dev.Snapshot().Sub(before)
	b.ReportMetric(ledger.GUPS(b.Elapsed()), "GUPS")
	b.ReportMetric(ledger.GUPS(b.Elapsed())*backproject.FLOPPerUpdate, "GFLOPS")
}

// BenchmarkFig12RooflineStreaming measures our kernel (Figure 12 △).
func BenchmarkFig12RooflineStreaming(b *testing.B) { kernelBench(b, true) }

// BenchmarkFig12RooflineBatch measures the RTK-style kernel (Figure 12 ◦).
func BenchmarkFig12RooflineBatch(b *testing.B) { kernelBench(b, false) }

// simBench runs a paper-scale simulation sweep.
func simBench(b *testing.B, weak bool) {
	ds, err := dataset.ByName("coffee-bean")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, ngpus := range []int{16, 64, 256, 1024} {
			full := *ds
			full.NP = 6400
			if weak {
				full.NP = 6400 * ngpus / 1024
				// Keep NP divisible by the fixed group width.
				for full.NP%16 != 0 {
					full.NP++
				}
			}
			sys, err := full.System(4096)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := core.NewPlan(sys, ngpus/16, 16, core.DefaultBatchCount)
			if err != nil {
				b.Fatal(err)
			}
			m, err := perfmodel.New(plan, perfmodel.ABCI())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dessim.Simulate(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig13StrongScaling drives the strong-scaling simulation sweep.
func BenchmarkFig13StrongScaling(b *testing.B) { simBench(b, false) }

// BenchmarkFig14WeakScaling drives the weak-scaling simulation sweep.
func BenchmarkFig14WeakScaling(b *testing.B) { simBench(b, true) }

// BenchmarkFig15GUPS reports the simulated 1024-GPU throughput in the
// paper's GUPS metric.
func BenchmarkFig15GUPS(b *testing.B) {
	ds, err := dataset.ByName("coffee-bean")
	if err != nil {
		b.Fatal(err)
	}
	full := *ds
	full.NP = 6400
	sys, err := full.System(4096)
	if err != nil {
		b.Fatal(err)
	}
	var gups float64
	for i := 0; i < b.N; i++ {
		plan, err := core.NewPlan(sys, 64, 16, core.DefaultBatchCount)
		if err != nil {
			b.Fatal(err)
		}
		m, err := perfmodel.New(plan, perfmodel.ABCI())
		if err != nil {
			b.Fatal(err)
		}
		res, err := dessim.Simulate(m)
		if err != nil {
			b.Fatal(err)
		}
		gups = perfmodel.GUPS(sys, res.Runtime)
	}
	b.ReportMetric(gups, "simGUPS")
}

// --- Ablation benches (DESIGN.md design choices) ---

func distributedBench(b *testing.B, ng, nr int, hier bool, rpn int) {
	sc := scenario(b, "tomo_00029", 24, 48)
	plan, err := core.NewPlan(sc.Sys, ng, nr, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.RunDistributed(core.ClusterOptions{
			Plan: plan, Source: sc.Source, Output: sink,
			Hierarchical: hier, RanksPerNode: rpn,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReduceSegmented: Ng=4 groups of 2 (segmented).
func BenchmarkAblationReduceSegmented(b *testing.B) { distributedBench(b, 4, 2, false, 0) }

// BenchmarkAblationReduceGlobal: one group of 8 (global collective).
func BenchmarkAblationReduceGlobal(b *testing.B) { distributedBench(b, 1, 8, false, 0) }

// BenchmarkAblationHierarchicalReduce: node-leader reduction (§4.4.2).
func BenchmarkAblationHierarchicalReduce(b *testing.B) { distributedBench(b, 1, 8, true, 4) }

// BenchmarkAblationDifferential compares Equation 6 differential loading
// against full reloads through the experiment driver.
func BenchmarkAblationDifferential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDifferential(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRingDepth evaluates the Nc ↔ ring-depth trade-off.
func BenchmarkAblationRingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRingDepth(0); err != nil {
			b.Fatal(err)
		}
	}
}

func pipelineBench(b *testing.B, serial bool) {
	sc := scenario(b, "tomo_00029", 24, 64)
	plan, err := core.NewPlan(sc.Sys, 1, 1, core.DefaultBatchCount)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink, _ := core.NewVolumeSink(sc.Sys)
		if _, err := core.ReconstructSingle(core.ReconOptions{
			Plan: plan, Source: sc.Source, Device: device.New("bench", 0, 0),
			Sink: sink, DisablePipeline: serial,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterativeSIRT measures one SIRT pass of the iterative
// substrate (the extension experiments' workhorse).
func BenchmarkIterativeSIRT(b *testing.B) {
	sys := &geometry.System{
		DSO: 250, DSD: 350,
		NU: 36, NV: 30, DU: 0.6, DV: 0.6,
		NP: 16,
		NX: 20, NY: 20, NZ: 16, DX: 0.5, DY: 0.5, DZ: 0.5,
	}
	st, err := forward.Project(sys, phantom.UniformSphere(0.5, 1), 4.0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iterative.Reconstruct(sys, st, iterative.Options{Iterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFilterPlacementPipelined: CPU filtering overlapped with
// back-projection (§4.2, this work).
func BenchmarkAblationFilterPlacementPipelined(b *testing.B) { pipelineBench(b, false) }

// BenchmarkAblationFilterPlacementSerial: stages serialised (the effect of
// filtering on the device).
func BenchmarkAblationFilterPlacementSerial(b *testing.B) { pipelineBench(b, true) }
