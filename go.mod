module distfdk

go 1.22
